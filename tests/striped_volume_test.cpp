// StripedVolume tests: the host-layer composition contract.
//
//   * Geometry validation: mixed zonedness, bad widths, bad stripe units
//     are rejected at Create() — never discovered mid-I/O.
//   * Typed zone routing: ToMemberZone/ToLogicalZone are inverse
//     bijections, and stripe-set routing keeps logical zones of
//     different sets on disjoint members.
//   * Data path: integrity tokens survive the split/gather/scatter round
//     trip in logical page order, across stripe-unit fragments.
//   * Determinism: same seed => bit-identical runs; a 1-member volume is
//     bit-identical (completions AND stats) to the bare device.
//   * Overlap: a full-stripe write on N members completes earlier in
//     simulated time than the same bytes on one member — the member
//     timelines genuinely advance independently.
//   * Conventional gating: a volume of conventional members reports
//     zone_size_bytes == 0 and refuses ResetZone itself (DeviceInfo is
//     the gate, not a member's error code), while FioRunner's
//     reset-on-wrap path skips resets for the same reason.
//   * Crash interop: power-cutting exactly one member mid-stripe leaves
//     the durable prefix readable through the volume, survivors
//     untouched, and the torn logical zone reconcilable with one reset.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "conzone/conzone.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

std::vector<std::uint64_t> Tokens(std::uint64_t first, std::uint64_t n,
                                  std::uint64_t salt = 0) {
  std::vector<std::uint64_t> t(n);
  for (std::uint64_t i = 0; i < n; ++i) t[i] = (first + i) * 7919 + salt + 1;
  return t;
}

std::unique_ptr<StorageDevice> MakeFemu(std::uint64_t seed) {
  FemuConfig cfg;
  cfg.seed = seed;
  auto dev = FemuModelDevice::Create(cfg);
  EXPECT_TRUE(dev.ok()) << dev.status().ToString();
  return std::move(dev).value();
}

std::unique_ptr<StorageDevice> MakeLegacy(std::uint64_t seed) {
  LegacyConfig cfg;
  cfg.geometry.blocks_per_chip = 20;
  cfg.geometry.slc_blocks_per_chip = 4;
  (void)seed;  // Legacy runs fault-free here; members only differ by role.
  auto dev = LegacyDevice::Create(cfg);
  EXPECT_TRUE(dev.ok()) << dev.status().ToString();
  return std::move(dev).value();
}

ConZoneConfig SmallConZoneCfg() {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 20;
  cfg.geometry.slc_blocks_per_chip = 4;
  return cfg;
}

std::unique_ptr<StorageDevice> MakeConZone(const ConZoneConfig& cfg) {
  auto dev = ConZoneDevice::Create(cfg);
  EXPECT_TRUE(dev.ok()) << dev.status().ToString();
  return std::move(dev).value();
}

Result<std::unique_ptr<StripedVolume>> MakeFemuVolume(std::uint32_t members,
                                                      std::uint32_t width = 0,
                                                      std::uint64_t stripe = 64 * kKiB) {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < members; ++i) devs.push_back(MakeFemu(i + 1));
  StripedVolumeOptions opt;
  opt.stripe_bytes = stripe;
  opt.stripe_width = width;
  return StripedVolume::Create(std::move(devs), opt);
}

// ---------------------------------------------------------------------------
// Create() validation
// ---------------------------------------------------------------------------

TEST(StripedVolumeCreateTest, RejectsBadGeometry) {
  // Mixed zonedness: decided from DeviceInfo at Create, not at first IO.
  {
    std::vector<std::unique_ptr<StorageDevice>> devs;
    devs.push_back(MakeFemu(1));
    devs.push_back(MakeLegacy(2));
    auto r = StripedVolume::Create(std::move(devs), {});
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Width must divide the member count.
  {
    auto r = MakeFemuVolume(4, /*width=*/3);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Stripe unit must divide the member zone size.
  {
    auto r = MakeFemuVolume(2, /*width=*/0, /*stripe=*/40 * kKiB);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Stripe unit must respect the I/O alignment.
  {
    auto r = MakeFemuVolume(2, /*width=*/0, /*stripe=*/6 * kKiB);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Conventional volumes always stripe across all members.
  {
    std::vector<std::unique_ptr<StorageDevice>> devs;
    devs.push_back(MakeLegacy(1));
    devs.push_back(MakeLegacy(2));
    devs.push_back(MakeLegacy(3));
    devs.push_back(MakeLegacy(4));
    StripedVolumeOptions opt;
    opt.stripe_width = 2;
    auto r = StripedVolume::Create(std::move(devs), opt);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::vector<std::unique_ptr<StorageDevice>> devs;
    auto r = StripedVolume::Create(std::move(devs), {});
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Typed zone identity
// ---------------------------------------------------------------------------

TEST(StripedVolumeTest, TypedZoneIdsRoundTripAcrossStripeSets) {
  auto vol = MakeFemuVolume(6, /*width=*/2);
  ASSERT_TRUE(vol.ok()) << vol.status().ToString();
  StripedVolume& v = **vol;
  const DeviceInfo di = v.info();
  ASSERT_EQ(v.stripe_width(), 2u);
  ASSERT_EQ(di.num_zones % 3, 0u);  // 3 stripe sets interleave the zones

  const std::uint64_t member_zone = v.member(0).info().zone_size_bytes;
  EXPECT_EQ(di.zone_size_bytes, 2 * member_zone);

  for (std::uint64_t l = 0; l < di.num_zones; ++l) {
    for (std::uint32_t lane = 0; lane < v.stripe_width(); ++lane) {
      const MemberZone mz = v.ToMemberZone(ZoneId{l}, lane);
      EXPECT_LT(mz.member, v.num_members());
      // A logical zone's set is l % num_sets; its members are exactly
      // that set's lanes.
      EXPECT_EQ(mz.member, (l % 3) * 2 + lane);
      EXPECT_EQ(mz.zone.value(), l / 3);
      // Round trip: member zone -> the same logical zone.
      EXPECT_EQ(v.ToLogicalZone(mz), ZoneId{l});
    }
  }
}

// ---------------------------------------------------------------------------
// Data path: token gather/scatter
// ---------------------------------------------------------------------------

TEST(StripedVolumeTest, TokensRoundTripInLogicalPageOrder) {
  auto vol = MakeFemuVolume(3, /*width=*/0, /*stripe=*/16 * kKiB);
  ASSERT_TRUE(vol.ok()) << vol.status().ToString();
  StripedVolume& v = **vol;

  // Sequential writes of deliberately awkward lengths: fragments start
  // and end mid-stripe-unit, so every write exercises gather.
  SimTime t;
  std::uint64_t off = 0;
  for (const std::uint64_t len :
       {36 * kKiB, 4 * kKiB, 92 * kKiB, 8 * kKiB, 116 * kKiB}) {
    auto r = v.Write(IoRequest{off, len, t, Tokens(off / 4096, len / 4096)});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    t = r.value().done;
    off += len;
  }

  // One read over the whole span and several unaligned sub-reads: the
  // scatter must reassemble logical page order across members.
  for (const auto& [ro, rl] :
       std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0, off}, {12 * kKiB, 72 * kKiB}, {100 * kKiB, 24 * kKiB}}) {
    auto r = v.Read(IoRequest{ro, rl, t, {}, /*want_tokens=*/true});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    t = r.value().done;
    EXPECT_EQ(r.value().tokens, Tokens(ro / 4096, rl / 4096)) << "off=" << ro;
  }

  // The volume's merged snapshot is the sum of its members'.
  StatsSnapshot sum;
  for (std::uint32_t i = 0; i < v.num_members(); ++i) sum.Merge(v.member(i).Stats());
  EXPECT_EQ(v.Stats(), sum);
  EXPECT_EQ(v.Stats().host_bytes_written, off);
}

// ---------------------------------------------------------------------------
// ResetZone fan-out
// ---------------------------------------------------------------------------

TEST(StripedVolumeTest, ResetFansOutToOwningSetOnly) {
  auto vol = MakeFemuVolume(4, /*width=*/2, /*stripe=*/16 * kKiB);
  ASSERT_TRUE(vol.ok()) << vol.status().ToString();
  StripedVolume& v = **vol;
  const std::uint64_t zb = v.info().zone_size_bytes;

  // Zone 0 lives on set 0 (members 0,1), zone 1 on set 1 (members 2,3).
  SimTime t;
  auto w0 = v.Write(IoRequest{0, 64 * kKiB, t, Tokens(0, 16)});
  ASSERT_TRUE(w0.ok());
  auto w1 = v.Write(IoRequest{zb, 64 * kKiB, w0.value().done, Tokens(1000, 16)});
  ASSERT_TRUE(w1.ok());
  t = w1.value().done;

  auto reset = v.ResetZone(ZoneId{0}, t);
  ASSERT_TRUE(reset.ok()) << reset.status().ToString();
  t = reset.value();

  // Zone 0's content is gone (read past the reset write pointer fails)...
  EXPECT_FALSE(v.Read(IoRequest{0, 4 * kKiB, t}).ok());
  // ...zone 1, on the other set's members, is untouched.
  auto r1 = v.Read(IoRequest{zb, 64 * kKiB, t, {}, /*want_tokens=*/true});
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1.value().tokens, Tokens(1000, 16));
  // And zone 0 accepts a fresh sequential write from its start.
  auto w2 = v.Write(IoRequest{0, 32 * kKiB, r1.value().done, Tokens(50, 8)});
  ASSERT_TRUE(w2.ok()) << w2.status().ToString();
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

RunResult RunVolumeWorkload(StorageDevice& dev) {
  const DeviceInfo di = dev.info();
  FioRunner fio(dev);

  JobSpec wr;
  wr.name = "seqwrite";
  wr.pattern = IoPattern::kSequential;
  wr.direction = IoDirection::kWrite;
  wr.block_size = 64 * kKiB;
  wr.region_offset = 0;
  wr.region_size = di.zone_size_bytes;  // one logical zone
  wr.io_count = 600;
  wr.reset_zones_on_wrap = true;
  wr.seed = 11;

  JobSpec rd;
  rd.name = "randread";
  rd.pattern = IoPattern::kRandom;
  rd.direction = IoDirection::kRead;
  rd.block_size = 4 * kKiB;
  rd.region_offset = di.zone_size_bytes;  // preconditioned second zone
  rd.region_size = di.zone_size_bytes / 2;
  rd.io_count = 600;
  rd.iodepth = 4;
  rd.seed = 7;

  SimTime start;
  Status st = FioRunner::Precondition(dev, rd.region_offset, rd.region_size,
                                      256 * kKiB, &start);
  EXPECT_TRUE(st.ok()) << st.ToString();
  auto run = fio.Run({wr, rd}, start);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return std::move(run).value();
}

std::string Fingerprint(const RunResult& r) {
  std::string fp;
  for (const JobResult& j : r.jobs) {
    fp += j.name + ":" + std::to_string(j.throughput.bytes) + "," +
          std::to_string(j.throughput.ops) + "," +
          std::to_string(j.last_completion.ns()) + "," + j.latency.Summary() + ";";
  }
  fp += "events=" + std::to_string(r.events) +
        " end=" + std::to_string(r.end_time.ns());
  return fp;
}

std::unique_ptr<StripedVolume> MakeConZoneVolume(std::uint32_t members) {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  const ConZoneConfig cfg = SmallConZoneCfg();
  for (std::uint32_t i = 0; i < members; ++i) {
    devs.push_back(MakeConZone(cfg.ForShard(i, /*master_seed=*/42)));
  }
  auto vol = StripedVolume::Create(std::move(devs), {});
  EXPECT_TRUE(vol.ok()) << vol.status().ToString();
  return std::move(vol).value();
}

TEST(StripedVolumeTest, SameSeedIsBitIdentical) {
  for (const std::uint32_t members : {2u, 4u}) {
    auto a = MakeConZoneVolume(members);
    auto b = MakeConZoneVolume(members);
    const RunResult ra = RunVolumeWorkload(*a);
    const RunResult rb = RunVolumeWorkload(*b);
    EXPECT_EQ(Fingerprint(ra), Fingerprint(rb)) << "members=" << members;
    EXPECT_EQ(a->Stats(), b->Stats()) << "members=" << members;
  }
}

TEST(StripedVolumeTest, OneMemberVolumeMatchesBareDeviceBitForBit) {
  const ConZoneConfig cfg = SmallConZoneCfg();
  auto bare = MakeConZone(cfg.ForShard(0, 42));
  auto vol = MakeConZoneVolume(1);

  const RunResult direct = RunVolumeWorkload(*bare);
  const RunResult striped = RunVolumeWorkload(*vol);
  EXPECT_EQ(Fingerprint(direct), Fingerprint(striped));
  EXPECT_EQ(bare->Stats(), vol->Stats());
  EXPECT_EQ(vol->info().zone_size_bytes, bare->info().zone_size_bytes);
  EXPECT_EQ(vol->info().capacity_bytes, bare->info().capacity_bytes);
}

// ---------------------------------------------------------------------------
// Member overlap
// ---------------------------------------------------------------------------

TEST(StripedVolumeTest, FullStripeWriteOverlapsMemberTimelines) {
  // The same 1 MiB, submitted at the same instant and flushed to media:
  // four members each program a quarter concurrently; one member
  // programs all of it serially. Flush completion exposes the media
  // timelines (write completion alone can be a buffer ack).
  auto vol4 = MakeConZoneVolume(4);
  auto vol1 = MakeConZoneVolume(1);

  SimTime t;
  auto wide = vol4->Write(IoRequest{0, kMiB, t});
  auto narrow = vol1->Write(IoRequest{0, kMiB, t});
  ASSERT_TRUE(wide.ok() && narrow.ok());
  EXPECT_LE(wide.value().done.ns(), narrow.value().done.ns());
  auto wide_flush = vol4->Flush(wide.value().done);
  auto narrow_flush = vol1->Flush(narrow.value().done);
  ASSERT_TRUE(wide_flush.ok() && narrow_flush.ok());
  EXPECT_LT(wide_flush.value().ns(), narrow_flush.value().ns());
}

// ---------------------------------------------------------------------------
// Conventional members: DeviceInfo gating
// ---------------------------------------------------------------------------

TEST(StripedVolumeTest, ConventionalVolumeGatesOnDeviceInfoNotErrorCodes) {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  devs.push_back(MakeLegacy(1));
  devs.push_back(MakeLegacy(2));
  auto vol = StripedVolume::Create(std::move(devs), {});
  ASSERT_TRUE(vol.ok()) << vol.status().ToString();
  StripedVolume& v = **vol;

  const DeviceInfo di = v.info();
  EXPECT_EQ(di.zone_size_bytes, 0u);
  EXPECT_FALSE(di.zoned());
  EXPECT_GT(di.capacity_bytes, 0u);

  // In-place overwrites at arbitrary aligned offsets are legal (flushed
  // between generations, as on the bare Legacy device).
  SimTime t;
  auto w1 = v.Write(IoRequest{128 * kKiB, 64 * kKiB, t, Tokens(32, 16, 1)});
  ASSERT_TRUE(w1.ok()) << w1.status().ToString();
  auto f1 = v.Flush(w1.value().done);
  ASSERT_TRUE(f1.ok());
  auto w2 = v.Write(IoRequest{128 * kKiB, 64 * kKiB, f1.value(), Tokens(32, 16, 2)});
  ASSERT_TRUE(w2.ok()) << w2.status().ToString();
  auto f2 = v.Flush(w2.value().done);
  ASSERT_TRUE(f2.ok());
  auto r = v.Read(IoRequest{128 * kKiB, 64 * kKiB, f2.value(), {}, true});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().tokens, Tokens(32, 16, 2));

  // The volume refuses ResetZone from its own DeviceInfo, without
  // touching any member.
  const StatsSnapshot before = v.Stats();
  auto reset = v.ResetZone(ZoneId{0}, r.value().done);
  EXPECT_EQ(reset.status().code(), StatusCode::kUnimplemented);
  EXPECT_EQ(v.Stats(), before);
}

TEST(StripedVolumeTest, FioWrapOnConventionalVolumeSkipsZoneResets) {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  devs.push_back(MakeLegacy(1));
  devs.push_back(MakeLegacy(2));
  auto vol = StripedVolume::Create(std::move(devs), {});
  ASSERT_TRUE(vol.ok()) << vol.status().ToString();
  StripedVolume& v = **vol;

  // A sequential write job sized to wrap several times. On a zoned
  // device reset_zones_on_wrap would reset the region's zones; on a
  // conventional volume FioRunner must gate that on
  // DeviceInfo.zone_size_bytes == 0 and simply overwrite in place.
  JobSpec wr;
  wr.name = "wrap";
  wr.pattern = IoPattern::kSequential;
  wr.direction = IoDirection::kWrite;
  wr.block_size = 256 * kKiB;
  wr.region_offset = 0;
  wr.region_size = 2 * kMiB;
  wr.io_count = 40;  // five full passes over the region
  wr.reset_zones_on_wrap = true;
  wr.seed = 3;

  FioRunner fio(v);
  auto run = fio.Run({wr});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().total.ops, 40u);
  EXPECT_EQ(run.value().io_errors, 0u);
  EXPECT_EQ(v.Stats().zone_resets, 0u);
  EXPECT_GT(v.Stats().overwrites, 0u);
}

// ---------------------------------------------------------------------------
// Compat overloads
// ---------------------------------------------------------------------------

TEST(StripedVolumeTest, CompatOverloadsMatchIoRequestForm) {
  auto a = MakeFemuVolume(3);
  auto b = MakeFemuVolume(3);
  ASSERT_TRUE(a.ok() && b.ok());

  SimTime t;
  const auto toks = Tokens(0, 48);
  auto wa = TestWrite(**a, /*offset=*/0, /*len=*/192 * kKiB, t,
                        std::span<const std::uint64_t>(toks));
  auto wb = (*b)->Write(IoRequest{0, 192 * kKiB, t, toks});
  ASSERT_TRUE(wa.ok() && wb.ok());
  EXPECT_EQ(wa.value().ns(), wb.value().done.ns());

  std::vector<std::uint64_t> got;
  auto ra = TestRead(**a, 0, 192 * kKiB, wa.value(), &got);
  auto rb = (*b)->Read(IoRequest{0, 192 * kKiB, wb.value().done, {}, true});
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra.value().ns(), rb.value().done.ns());
  EXPECT_EQ(got, rb.value().tokens);
  EXPECT_EQ(got, toks);
}

// ---------------------------------------------------------------------------
// Crash interop: one member power-cut mid-stripe
// ---------------------------------------------------------------------------

TEST(StripedVolumeTest, SingleMemberPowerCutLeavesVolumeRecoverable) {
  ConZoneConfig cfg = SmallConZoneCfg();
  cfg.fault.power_loss = true;  // journaling on, cuts legal

  std::vector<ConZoneDevice*> raw;
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto dev = ConZoneDevice::Create(cfg.ForShard(i, 42));
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    raw.push_back(dev.value().get());
    devs.push_back(std::move(dev).value());
  }
  StripedVolumeOptions opt;
  opt.stripe_bytes = 16 * kKiB;
  auto volr = StripedVolume::Create(std::move(devs), opt);
  ASSERT_TRUE(volr.ok()) << volr.status().ToString();
  StripedVolume& v = **volr;
  const std::uint64_t stripe = v.stripe_bytes();

  // Durable phase: 12 stripe units into logical zone 0, then Flush.
  SimTime t;
  const std::uint64_t durable_bytes = 12 * stripe;
  auto w = v.Write(IoRequest{0, durable_bytes, t, Tokens(0, durable_bytes / 4096)});
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  auto f = v.Flush(w.value().done);
  ASSERT_TRUE(f.ok());
  t = f.value();

  // Torn phase: 5 more units, never flushed. Units 12..16 land on
  // members 0,1,2,0,1 — the cut member (1) owns units 13 and 16.
  const std::uint64_t torn_bytes = 5 * stripe;
  auto wt = v.Write(IoRequest{durable_bytes, torn_bytes, t,
                              Tokens(durable_bytes / 4096, torn_bytes / 4096)});
  ASSERT_TRUE(wt.ok()) << wt.status().ToString();
  const SimTime cut = wt.value().done;

  // Power-cut member 1 only, then remount it.
  ASSERT_TRUE(raw[1]->PowerCut(cut).ok());
  auto rec = raw[1]->Recover(cut);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  SimTime now = rec.value();

  // 1) Acknowledged-durable data reads back exactly, through the volume.
  auto rd = v.Read(IoRequest{0, durable_bytes, now, {}, /*want_tokens=*/true});
  ASSERT_TRUE(rd.ok()) << rd.status().ToString();
  EXPECT_EQ(rd.value().tokens, Tokens(0, durable_bytes / 4096));
  now = rd.value().done;

  // 2) Surviving members are unaffected: their torn-phase stripe units
  //    (12, 14, 15) still read back exactly.
  for (const std::uint64_t u : {12ull, 14ull, 15ull}) {
    auto r = v.Read(IoRequest{u * stripe, stripe, now, {}, true});
    ASSERT_TRUE(r.ok()) << "unit " << u << ": " << r.status().ToString();
    EXPECT_EQ(r.value().tokens, Tokens(u * stripe / 4096, stripe / 4096));
    now = r.value().done;
  }

  // 3) The cut member's torn units come back as a prefix: unit 16 may
  //    only be readable if unit 13 is (flash programs land in order).
  const bool u13 = v.Read(IoRequest{13 * stripe, stripe, now}).ok();
  const bool u16 = v.Read(IoRequest{16 * stripe, stripe, now}).ok();
  EXPECT_TRUE(u13 || !u16);

  // 4) Reconciling the torn logical zone: one volume-level reset brings
  //    every member's stripe back in step and the zone accepts fresh
  //    sequential writes.
  auto reset = v.ResetZone(ZoneId{0}, now);
  ASSERT_TRUE(reset.ok()) << reset.status().ToString();
  auto fresh = v.Write(IoRequest{0, 6 * stripe, reset.value(),
                                 Tokens(5000, 6 * stripe / 4096)});
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  auto verify = v.Read(IoRequest{0, 6 * stripe, fresh.value().done, {}, true});
  ASSERT_TRUE(verify.ok()) << verify.status().ToString();
  EXPECT_EQ(verify.value().tokens, Tokens(5000, 6 * stripe / 4096));
}

}  // namespace
}  // namespace conzone
