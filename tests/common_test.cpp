// Unit tests for the common substrate: simulated time, units, RNG,
// statistics, and status handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/fastdiv.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace conzone {
namespace {

using namespace conzone::literals;

// --- time ---

TEST(SimDurationTest, ConstructorsAgree) {
  EXPECT_EQ(SimDuration::Micros(1).ns(), 1000u);
  EXPECT_EQ(SimDuration::Millis(1).ns(), 1000000u);
  EXPECT_EQ(SimDuration::Seconds(1).ns(), 1000000000u);
  EXPECT_EQ(SimDuration::MicrosF(937.5).ns(), 937500u);
  EXPECT_EQ(SimDuration::MicrosF(0.5).ns(), 500u);
}

TEST(SimDurationTest, Arithmetic) {
  const SimDuration a = SimDuration::Micros(10);
  const SimDuration b = SimDuration::Micros(3);
  EXPECT_EQ((a + b).us(), 13.0);
  EXPECT_EQ((a - b).us(), 7.0);
  EXPECT_EQ((a * 4).us(), 40.0);
  EXPECT_EQ((a / 2).us(), 5.0);
  EXPECT_LT(b, a);
}

TEST(SimTimeTest, AdvanceAndDifference) {
  SimTime t = SimTime::Zero();
  t += SimDuration::Micros(5);
  const SimTime u = t + SimDuration::Micros(7);
  EXPECT_EQ((u - t).us(), 7.0);
  EXPECT_EQ(Later(t, u), u);
  EXPECT_EQ(Later(u, t), u);
}

TEST(SimTimeTest, Formatting) {
  EXPECT_EQ(SimTime::FromNanos(500).ToString(), "500ns");
  EXPECT_EQ(SimDuration::Micros(20).ToString(), "20.00us");
  EXPECT_EQ(SimDuration::Millis(3).ToString(), "3.00ms");
  EXPECT_EQ(SimDuration::Seconds(2).ToString(), "2.000s");
}

// --- units ---

TEST(UnitsTest, LiteralsAndHelpers) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(16_MiB, 16ull * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1ull << 30);
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_TRUE(IsPowerOfTwo(16));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(24));
  EXPECT_EQ(RoundUp(10, 4), 12u);
  EXPECT_EQ(RoundDown(10, 4), 8u);
  EXPECT_EQ(RoundUp(12, 4), 12u);
}

// --- rng ---

TEST(RngTest, DeterministicFromSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t v = rng.NextInRange(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, PrecomputedThresholdMatchesPlainNextBelow) {
  Rng a(42), b(42);
  for (std::uint64_t bound : {1ull, 7ull, 4096ull, (1ull << 40) + 3}) {
    const std::uint64_t threshold = Rng::RejectionThreshold(bound);
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(a.NextBelow(bound), b.NextBelow(bound, threshold));
    }
  }
}

// --- FastDiv ---

TEST(FastDivTest, MatchesHardwareDivisionExactly) {
  const std::uint64_t divisors[] = {
      1,  2,  3,  4,  5,    7,    12,         42,        4096,
      96 * 1024,  252,  1000000000ull, 3200ull * 1024 * 1024,
      (1ull << 32) - 1, (1ull << 32) + 1, (1ull << 63) + 12345};
  const std::uint64_t dividends[] = {
      0, 1, 2, 3, 41, 42, 43, 4095, 4096, 4097, (1ull << 32) - 1, 1ull << 32,
      (1ull << 32) + 1, 123456789012345ull, ~0ull - 1, ~0ull};
  for (std::uint64_t d : divisors) {
    const FastDiv fd(d);
    EXPECT_EQ(fd.value(), d);
    for (std::uint64_t x : dividends) {
      EXPECT_EQ(fd.Div(x), x / d) << x << " / " << d;
      EXPECT_EQ(fd.Mod(x), x % d) << x << " % " << d;
    }
  }
}

TEST(FastDivTest, ExhaustiveAroundMultiples) {
  // Exactness is most fragile just below/above exact multiples of the
  // divisor, where the reciprocal's rounding error could flip the floor.
  for (std::uint64_t d : {3ull, 4096ull, 98304ull, 3355443200ull, (1ull << 33) + 7}) {
    const FastDiv fd(d);
    for (std::uint64_t k : {0ull, 1ull, 2ull, 1000ull, (1ull << 20) + 1}) {
      const std::uint64_t base = k * d;
      for (std::uint64_t delta = 0; delta < 3; ++delta) {
        if (base + delta >= base) {  // skip overflow
          EXPECT_EQ(fd.Div(base + delta), (base + delta) / d);
        }
        if (base >= delta + 1) {
          EXPECT_EQ(fd.Div(base - delta - 1), (base - delta - 1) / d);
        }
      }
    }
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

// --- stats ---

TEST(LatencyHistogramTest, BasicMoments) {
  LatencyHistogram h;
  h.Record(SimDuration::Micros(10));
  h.Record(SimDuration::Micros(20));
  h.Record(SimDuration::Micros(30));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min().us(), 10.0);
  EXPECT_EQ(h.max().us(), 30.0);
  EXPECT_EQ(h.mean().us(), 20.0);
}

TEST(LatencyHistogramTest, PercentilesBoundedByExtremes) {
  LatencyHistogram h;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    h.Record(SimDuration::Nanos(rng.NextInRange(1000, 1000000)));
  }
  EXPECT_GE(h.Percentile(0.0).ns(), h.min().ns());
  EXPECT_LE(h.Percentile(1.0).ns(), h.max().ns());
  EXPECT_LE(h.Percentile(0.5).ns(), h.Percentile(0.99).ns());
  EXPECT_LE(h.Percentile(0.99).ns(), h.Percentile(0.999).ns());
}

TEST(LatencyHistogramTest, QuantileAccuracyWithinBucketError) {
  // Uniform values: p50 should land near the midpoint with the ~1.6%
  // log-linear bucket error plus sampling noise.
  LatencyHistogram h;
  for (int i = 1; i <= 100000; ++i) h.Record(SimDuration::Nanos(static_cast<std::uint64_t>(i)));
  const double p50 = static_cast<double>(h.Percentile(0.5).ns());
  EXPECT_NEAR(p50, 50000.0, 50000.0 * 0.04);
  const double p99 = static_cast<double>(h.Percentile(0.99).ns());
  EXPECT_NEAR(p99, 99000.0, 99000.0 * 0.04);
}

TEST(LatencyHistogramTest, MergeCombinesPopulations) {
  LatencyHistogram a, b;
  a.Record(SimDuration::Micros(10));
  b.Record(SimDuration::Micros(100));
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min().us(), 10.0);
  EXPECT_EQ(a.max().us(), 100.0);
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(SimDuration::Micros(10));
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5).ns(), 0u);
}

TEST(ThroughputTest, RatesFromBytesAndOps) {
  Throughput t;
  t.bytes = 100 * kMiB;
  t.ops = 1000;
  t.elapsed = SimDuration::Seconds(2);
  EXPECT_DOUBLE_EQ(t.MiBps(), 50.0);
  EXPECT_DOUBLE_EQ(t.Iops(), 500.0);
  EXPECT_DOUBLE_EQ(t.Kiops(), 0.5);
}

TEST(ThroughputTest, ZeroElapsedIsZeroRate) {
  Throughput t;
  t.bytes = 1;
  EXPECT_EQ(t.MiBps(), 0.0);
}

// --- status ---

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad offset");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad offset");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err = Status::OutOfRange("x");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

// --- ids ---

TEST(IdTest, InvalidAndComparison) {
  Lpn a{5}, b{6};
  EXPECT_LT(a, b);
  EXPECT_EQ(a.next(), b);
  EXPECT_FALSE(Lpn::Invalid().valid());
  EXPECT_TRUE(a.valid());
}

}  // namespace
}  // namespace conzone
