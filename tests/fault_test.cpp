// Reliability-path tests: deterministic fault injection (FaultModel),
// bad-block retirement at the media layer, GC behavior around retired
// blocks, the device-level recovery paths (program-failure re-drive,
// erase-failure retirement, read-only degradation), per-IO error
// reporting in the workload runner, and a randomized 10k-IO fault soak
// with full data-integrity and counter-reconciliation checks.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "fault/fault_model.hpp"
#include "flash/array.hpp"
#include "flash/slc_allocator.hpp"
#include "gc/slc_gc.hpp"
#include "workload/fio.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

// ---------------------------------------------------------------------------
// FaultModel unit tests
// ---------------------------------------------------------------------------

FaultConfig Rates(double pf, double ef, double rr) {
  FaultConfig cfg;
  cfg.slc.program_fail = pf;
  cfg.slc.erase_fail = ef;
  cfg.slc.read_retry = rr;
  cfg.normal = cfg.slc;
  return cfg;
}

TEST(FaultModelTest, NullModelIsDisabled) {
  FaultModel null_model;
  EXPECT_FALSE(null_model.enabled());
  EXPECT_FALSE(FaultConfig{}.AnyFaults());
  FaultModel zero_rates{FaultConfig{}};
  EXPECT_FALSE(zero_rates.enabled());
}

TEST(FaultModelTest, ValidateRejectsBadRates) {
  EXPECT_TRUE(FaultConfig{}.Validate().ok());
  EXPECT_TRUE(FaultConfig::ConsumerDefaults().Validate().ok());
  EXPECT_FALSE(Rates(-0.1, 0, 0).Validate().ok());
  EXPECT_FALSE(Rates(0, 1.5, 0).Validate().ok());
  FaultConfig bad_decay = Rates(0, 0, 0.1);
  bad_decay.read_retry_decay = 2.0;
  EXPECT_FALSE(bad_decay.Validate().ok());
}

TEST(FaultModelTest, SameSeedSameSequence) {
  const FaultConfig cfg = Rates(0.3, 0.3, 0.3);
  FaultModel a{cfg};
  FaultModel b{cfg};
  for (int i = 0; i < 2000; ++i) {
    const bool slc = (i % 3) != 0;
    const std::uint32_t ec = static_cast<std::uint32_t>(i % 7);
    ASSERT_EQ(a.ProgramFails(slc, ec), b.ProgramFails(slc, ec)) << i;
    ASSERT_EQ(a.EraseFails(slc, ec), b.EraseFails(slc, ec)) << i;
    ASSERT_EQ(a.ReadRetryLevel(slc, ec), b.ReadRetryLevel(slc, ec)) << i;
  }
  EXPECT_EQ(a.counters().program_faults, b.counters().program_faults);
  EXPECT_EQ(a.counters().erase_faults, b.counters().erase_faults);
  EXPECT_EQ(a.counters().reads_with_retry, b.counters().reads_with_retry);
  EXPECT_EQ(a.counters().retry_steps, b.counters().retry_steps);
  EXPECT_GT(a.counters().program_faults, 0u);  // rates high enough to fire
}

TEST(FaultModelTest, DifferentSeedDifferentSequence) {
  FaultConfig cfg = Rates(0.3, 0.3, 0.3);
  FaultModel a{cfg};
  cfg.seed ^= 0xDEADBEEFull;
  FaultModel b{cfg};
  bool diverged = false;
  for (int i = 0; i < 2000 && !diverged; ++i) {
    diverged = a.ProgramFails(true, 0) != b.ProgramFails(true, 0);
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultModelTest, RetryLevelsRespectCapAndDecay) {
  // decay = 1: each further step is a fresh p=0.5 draw (geometric), so
  // levels spread over [0, cap] and the cap is hit but never exceeded.
  FaultConfig cfg = Rates(0, 0, 0.5);
  cfg.read_retry_decay = 1.0;
  cfg.max_read_retries = 5;
  FaultModel capped{cfg};
  bool saw_cap = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t level = capped.ReadRetryLevel(true, 0);
    ASSERT_LE(level, 5u);
    saw_cap |= (level == 5);
  }
  EXPECT_TRUE(saw_cap);

  // decay = 0: never more than one step.
  cfg.read_retry_decay = 0.0;
  FaultModel single{cfg};
  bool saw_one = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t level = single.ReadRetryLevel(true, 0);
    ASSERT_LE(level, 1u);
    saw_one |= (level == 1);
  }
  EXPECT_TRUE(saw_one);
}

TEST(FaultModelTest, WearCouplingRaisesFailureRate) {
  FaultConfig cfg = Rates(0.01, 0, 0);
  cfg.rated_endurance = 100;
  cfg.wear_slope = 0.05;  // 100 erases past rating => 5x the base rate
  FaultModel model{cfg};
  int fresh = 0, worn = 0;
  for (int i = 0; i < 20000; ++i) {
    if (model.ProgramFails(true, 0)) ++fresh;
    if (model.ProgramFails(true, 200)) ++worn;
  }
  EXPECT_GT(worn, 2 * fresh);
}

// ---------------------------------------------------------------------------
// Media layer: retirement, scrubbing, counters
// ---------------------------------------------------------------------------

FlashGeometry FaultGeo() {
  FlashGeometry g;
  g.blocks_per_chip = 10;
  g.slc_blocks_per_chip = 4;
  g.pages_per_block = 12;
  return g;
}

std::vector<SlotWrite> MakeWrites(std::uint64_t first_lpn, std::size_t n) {
  std::vector<SlotWrite> w;
  for (std::size_t i = 0; i < n; ++i) w.push_back({Lpn{first_lpn + i}, first_lpn + i});
  return w;
}

TEST(ArrayFaultTest, ProgramFailureBurnsSlotsAndRetiresBlock) {
  FlashArray array(FaultGeo());
  FaultModel model{Rates(1.0, 0, 0)};
  array.AttachFaultModel(&model);
  const BlockId block{0};  // SLC

  const auto writes = MakeWrites(0, 4);
  Status st = array.ProgramSlots(block, writes);
  ASSERT_EQ(st.code(), StatusCode::kMediaError) << st.ToString();
  EXPECT_TRUE(array.IsRetired(block));
  // The pulse burned the slots: cursor advanced, nothing valid, nothing
  // counted as programmed.
  EXPECT_EQ(array.NextProgramSlot(block), 4u);
  EXPECT_EQ(array.ValidSlots(block), 0u);
  EXPECT_EQ(array.counters().slots_programmed_slc, 0u);
  EXPECT_EQ(array.reliability().program_failures_slc, 1u);
  EXPECT_EQ(array.reliability().retired_blocks_slc, 1u);
  EXPECT_EQ(model.counters().program_faults, 1u);

  // Retired blocks refuse further programs and erases outright.
  EXPECT_EQ(array.ProgramSlots(block, writes).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(array.EraseBlock(block).code(), StatusCode::kFailedPrecondition);
}

TEST(ArrayFaultTest, EraseFailureAccruesWearAndScrubKeepsCursor) {
  FlashArray array(FaultGeo());
  FaultModel model{Rates(0, 1.0, 0)};
  array.AttachFaultModel(&model);
  const BlockId block{0};

  ASSERT_TRUE(array.ProgramSlots(block, MakeWrites(0, 4)).ok());
  Status st = array.EraseBlock(block);
  ASSERT_EQ(st.code(), StatusCode::kMediaError) << st.ToString();
  EXPECT_TRUE(array.IsRetired(block));
  EXPECT_EQ(array.EraseCount(block), 1u);  // the failed pulse still wore the oxide
  EXPECT_EQ(array.reliability().erase_failures_slc, 1u);

  // Scrub drops the untrusted content but keeps the cursor: the block is
  // never programmed again, so stripe math stays consistent.
  array.ScrubBlock(block);
  EXPECT_EQ(array.ValidSlots(block), 0u);
  EXPECT_EQ(array.NextProgramSlot(block), 4u);
  EXPECT_EQ(array.StateOfSlot(Ppn{0}), SlotState::kInvalid);
}

TEST(ArrayFaultTest, HealthySlcBlocksTracksRetirement) {
  FlashArray array(FaultGeo());
  const std::uint32_t total = FaultGeo().slc_blocks_per_chip * FaultGeo().NumChips();
  EXPECT_EQ(array.HealthySlcBlocks(), total);
  array.RetireBlock(BlockId{0});
  array.RetireBlock(BlockId{0});  // idempotent
  EXPECT_EQ(array.HealthySlcBlocks(), total - 1);
  EXPECT_EQ(array.reliability().retired_blocks_slc, 1u);
}

// ---------------------------------------------------------------------------
// GC around retired blocks
// ---------------------------------------------------------------------------

class GcFaultTest : public ::testing::Test {
 protected:
  GcFaultTest()
      : array_(FaultGeo()),
        engine_(FaultGeo(), TimingConfig{}),
        pool_(FaultGeo()),
        alloc_(array_, pool_),
        gc_(array_, engine_, pool_, alloc_, GcConfig{2, 3}) {}

  std::vector<Ppn> Stage(std::uint64_t first_lpn, std::size_t n) {
    auto ppns = alloc_.Program(MakeWrites(first_lpn, n));
    EXPECT_TRUE(ppns.ok()) << ppns.status().ToString();
    return ppns.value();
  }

  FlashArray array_;
  FlashTimingEngine engine_;
  SuperblockPool pool_;
  SlcAllocator alloc_;
  SlcGarbageCollector gc_;
};

TEST_F(GcFaultTest, VictimSelectionSkipsFullyRetiredSuperblocks) {
  const FlashGeometry geo = FaultGeo();
  const std::uint64_t per_sb =
      static_cast<std::uint64_t>(geo.SlcUsableSlotsPerBlock()) * geo.NumChips();
  auto first = Stage(0, per_sb);       // superblock 0: will be fully retired
  auto second = Stage(10000, per_sb);  // superblock 1: mostly invalid
  Stage(20000, 1);                     // superblock 2: current (excluded)

  for (std::size_t i = 0; i < second.size() - 2; ++i) {
    ASSERT_TRUE(array_.InvalidateSlot(second[i]).ok());
  }
  // Retire every block of superblock 0: even with zero valid slots it must
  // never be selected — there is nothing erasable to reclaim.
  for (const Ppn p : first) ASSERT_TRUE(array_.InvalidateSlot(p).ok());
  const SuperblockId sb0 = geo.SuperblockOfBlock(geo.BlockOfSlot(first[0]));
  for (std::uint32_t c = 0; c < geo.NumChips(); ++c) {
    array_.RetireBlock(geo.BlockOfSuperblock(sb0, ChipId{c}));
  }

  const SuperblockId victim = gc_.SelectVictim();
  ASSERT_TRUE(victim.valid());
  EXPECT_EQ(victim, geo.SuperblockOfBlock(geo.BlockOfSlot(second[0])));
}

TEST_F(GcFaultTest, EraseFaultsDuringGcRetireWithoutReleasing) {
  FaultModel model{Rates(0, 1.0, 0)};  // every erase fails
  array_.AttachFaultModel(&model);
  const FlashGeometry geo = FaultGeo();
  const std::uint64_t per_sb =
      static_cast<std::uint64_t>(geo.SlcUsableSlotsPerBlock()) * geo.NumChips();
  auto a = Stage(0, per_sb);
  Stage(10000, 1);  // current
  for (const Ppn p : a) ASSERT_TRUE(array_.InvalidateSlot(p).ok());

  const SuperblockId victim = gc_.SelectVictim();
  ASSERT_TRUE(victim.valid());
  const std::size_t free_before = pool_.FreeSlcCount();
  auto done = gc_.Run(SimTime::Zero());
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  // Both chips' erases failed: the superblock is permanently lost — it
  // must NOT return to the free list, and it must never be selected again.
  EXPECT_EQ(pool_.FreeSlcCount(), free_before);
  EXPECT_EQ(array_.reliability().erase_failures_slc, geo.NumChips());
  EXPECT_EQ(array_.reliability().retired_blocks_slc, geo.NumChips());
  EXPECT_NE(gc_.SelectVictim(), victim);
}

// ---------------------------------------------------------------------------
// Device-level recovery paths
// ---------------------------------------------------------------------------

ConZoneConfig SmallConfig() {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 20;  // 4 SLC + 16 normal => 16 zones
  cfg.geometry.slc_blocks_per_chip = 4;
  return cfg;
}

std::vector<std::uint64_t> Tokens(std::uint64_t first_lpn, std::uint64_t count,
                                  std::uint64_t salt = 0) {
  std::vector<std::uint64_t> t(count);
  for (std::uint64_t i = 0; i < count; ++i) t[i] = (first_lpn + i) * 1000003 + salt;
  return t;
}

class DeviceFaultTest : public ::testing::Test {
 protected:
  void Create(const FaultConfig& fault) {
    ConZoneConfig cfg = SmallConfig();
    cfg.fault = fault;
    auto dev = ConZoneDevice::Create(cfg);
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    dev_ = std::move(dev).value();
  }

  void WriteAt(std::uint64_t off, std::uint64_t len, SimTime& t, std::uint64_t salt = 0) {
    auto tokens = Tokens(off / 4096, len / 4096, salt);
    auto r = TestWrite(*dev_, off, len, t, tokens);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    t = r.value();
  }

  void VerifyRead(std::uint64_t off, std::uint64_t len, SimTime& t,
                  std::uint64_t salt = 0) {
    std::vector<std::uint64_t> got;
    auto r = TestRead(*dev_, off, len, t, &got);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    t = r.value();
    auto want = Tokens(off / 4096, len / 4096, salt);
    ASSERT_EQ(got, want) << "payload mismatch at offset " << off;
  }

  std::unique_ptr<ConZoneDevice> dev_;
};

TEST_F(DeviceFaultTest, ProgramFailuresRedriveAndEveryLpnStaysReadable) {
  // Every program failure retires a whole block, and a retired reserved
  // block re-drives the rest of its zone stripe into SLC — so the SLC
  // region needs headroom for the cascade. Double it relative to
  // SmallConfig; the rates then exercise both recovery paths without
  // exhausting capacity (that IS the semantics: graceful degradation has
  // a real capacity cost).
  ConZoneConfig cfg = SmallConfig();
  cfg.geometry.blocks_per_chip = 24;  // 8 SLC + 16 normal => 16 zones
  cfg.geometry.slc_blocks_per_chip = 8;
  cfg.fault.slc.program_fail = 0.005;
  cfg.fault.normal.program_fail = 0.01;
  cfg.fault.read_only_spare_floor_blocks = 0;
  auto dev = ConZoneDevice::Create(cfg);
  ASSERT_TRUE(dev.ok()) << dev.status().ToString();
  dev_ = std::move(dev).value();

  const std::uint64_t zone_bytes = dev_->config().zone_size_bytes;
  SimTime t;
  // Zone 0: full sequential fill (exercises the fold path + its re-drive).
  // Frequent explicit flushes on zone 1 exercise the SLC staging path.
  WriteAt(0, zone_bytes, t);
  for (std::uint64_t off = 0; off < zone_bytes / 8; off += 8 * 4096) {
    WriteAt(zone_bytes + off, 8 * 4096, t, /*salt=*/7);
    auto f = dev_->Flush(t);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    t = f.value();
  }

  const ReliabilityStats rel = dev_->Reliability();
  EXPECT_GT(rel.program_failures_slc + rel.program_failures_normal, 0u);
  EXPECT_GT(rel.rewrite_slots, 0u);
  EXPECT_GT(rel.RetiredBlocks(), 0u);

  // Every acked write must read back its exact token, wherever recovery
  // put the data.
  VerifyRead(0, zone_bytes, t);
  VerifyRead(zone_bytes, zone_bytes / 8, t, /*salt=*/7);
}

TEST_F(DeviceFaultTest, ResetEraseFailureDegradesZoneButKeepsItWritable) {
  FaultConfig fault;
  fault.normal.erase_fail = 1.0;
  fault.read_only_spare_floor_blocks = 0;
  Create(fault);

  const std::uint64_t superpage = dev_->config().geometry.SuperpageBytes();
  SimTime t;
  WriteAt(0, superpage, t);  // full-buffer flush folds into the reserved blocks
  auto f = dev_->Flush(t);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  t = f.value();

  auto r = dev_->ResetZone(ZoneId{0}, t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  t = r.value();
  const ReliabilityStats rel = dev_->Reliability();
  EXPECT_GT(rel.erase_failures_normal, 0u);
  EXPECT_EQ(rel.retired_blocks_normal, rel.erase_failures_normal);

  // The zone's reserved blocks are gone, but the zone still accepts a full
  // rewrite: the data re-drives into SLC under page mapping. No pulse is
  // burned this time (the block was known-bad before programming), so the
  // evidence is SLC media traffic, not rewrite_slots.
  const std::uint64_t slc_before = dev_->media_counters().slots_programmed_slc;
  WriteAt(0, superpage, t, /*salt=*/3);
  VerifyRead(0, superpage, t, /*salt=*/3);
  EXPECT_GT(dev_->media_counters().slots_programmed_slc, slc_before);
}

TEST_F(DeviceFaultTest, SpareFloorTripsReadOnlyButReadsKeepWorking) {
  FaultConfig fault;
  fault.slc.program_fail = 0.5;
  // 16 SLC blocks total on this geometry: the first retirement trips.
  fault.read_only_spare_floor_blocks = 16;
  Create(fault);

  SimTime t;
  std::uint64_t written = 0;
  Status write_error;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t off = written;
    auto tokens = Tokens(off / 4096, 8);
    auto w = TestWrite(*dev_, off, 8 * 4096, t, tokens);
    if (!w.ok()) {
      write_error = w.status();
      break;
    }
    t = w.value();
    written += 8 * 4096;
    auto f = dev_->Flush(t);  // stage to SLC so program faults can fire
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    t = f.value();
  }
  ASSERT_FALSE(write_error.ok()) << "device never tripped read-only";
  EXPECT_EQ(write_error.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(write_error.ToString().find("read-only"), std::string::npos)
      << write_error.ToString();
  EXPECT_TRUE(dev_->read_only());
  EXPECT_EQ(dev_->Reliability().read_only_trips, 1u);

  // Everything acked before the trip still reads back.
  VerifyRead(0, written, t);
}

// ---------------------------------------------------------------------------
// Workload runner: per-IO error reporting
// ---------------------------------------------------------------------------

TEST_F(DeviceFaultTest, FioRunnerRecordsReadOnlyRejectionInsteadOfAborting) {
  // Gradual rate: the first retirement happens inside some flush, and the
  // NEXT write observes the tripped floor — rather than the whole region
  // collapsing inside a single staging run.
  FaultConfig fault;
  fault.slc.program_fail = 0.02;
  fault.read_only_spare_floor_blocks = 16;
  Create(fault);

  // Small synchronous writes force SLC staging (premature flushes), so
  // program faults fire until the spare floor trips mid-run.
  JobSpec writer;
  writer.name = "writer";
  writer.direction = IoDirection::kWrite;
  writer.pattern = IoPattern::kSequential;
  writer.block_size = 4096;
  writer.zone_list = {0, 1, 2, 3};
  writer.io_count = 100000;
  writer.iodepth = 2;
  writer.reset_zones_on_wrap = true;

  FioRunner runner(*dev_);
  auto run = runner.Run({writer});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GE(run.value().io_errors, 1u);
  ASSERT_EQ(run.value().jobs.size(), 1u);
  EXPECT_EQ(run.value().jobs[0].first_error.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(dev_->read_only());
  // The job stopped at the error; it did not burn the full budget.
  EXPECT_LT(run.value().jobs[0].throughput.ops, writer.io_count);
}

// ---------------------------------------------------------------------------
// Determinism across a realistic concurrent run, and the 10k-IO soak
// ---------------------------------------------------------------------------

struct SoakOutcome {
  std::string reliability;
  FaultCounters injected;
  std::uint64_t end_ns = 0;
  std::uint64_t ops = 0;
  std::uint64_t io_errors = 0;
};

SoakOutcome RunConcurrentFaultJob() {
  ConZoneConfig cfg = SmallConfig();
  cfg.fault = FaultConfig::ConsumerDefaults();
  cfg.fault.read_only_spare_floor_blocks = 0;
  auto dev = ConZoneDevice::Create(cfg);
  EXPECT_TRUE(dev.ok()) << dev.status().ToString();

  SimTime t;
  {
    std::uint64_t end_ns = 0;
    SimTime end = SimTime::Zero();
    (void)end_ns;
    Status st = FioRunner::Precondition(*dev.value(), 0,
                                        4 * cfg.zone_size_bytes, 512 * kKiB, &end);
    EXPECT_TRUE(st.ok()) << st.ToString();
    t = end;
  }

  JobSpec reader;
  reader.name = "rr";
  reader.direction = IoDirection::kRead;
  reader.pattern = IoPattern::kRandom;
  reader.block_size = 4096;
  reader.region_offset = 0;
  reader.region_size = 4 * cfg.zone_size_bytes;
  reader.io_count = 2000;
  reader.iodepth = 4;

  JobSpec writer;
  writer.name = "sw";
  writer.direction = IoDirection::kWrite;
  writer.pattern = IoPattern::kSequential;
  writer.block_size = 16 * 4096;
  writer.zone_list = {8, 9};
  writer.io_count = 1000;
  writer.iodepth = 2;
  writer.reset_zones_on_wrap = true;

  FioRunner runner(*dev.value());
  auto run = runner.Run({reader, writer}, t);
  EXPECT_TRUE(run.ok()) << run.status().ToString();

  SoakOutcome out;
  out.reliability = dev.value()->Reliability().Summary();
  out.injected = dev.value()->fault_model().counters();
  out.end_ns = run.ok() ? run.value().end_time.ns() : 0;
  out.ops = run.ok() ? run.value().total.ops : 0;
  out.io_errors = run.ok() ? run.value().io_errors : 0;
  return out;
}

TEST(FaultDeterminismTest, ConcurrentRunsWithSameSeedAreBitIdentical) {
  const SoakOutcome a = RunConcurrentFaultJob();
  const SoakOutcome b = RunConcurrentFaultJob();
  EXPECT_EQ(a.reliability, b.reliability);
  EXPECT_EQ(a.end_ns, b.end_ns);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.io_errors, b.io_errors);
  EXPECT_EQ(a.injected.program_faults, b.injected.program_faults);
  EXPECT_EQ(a.injected.erase_faults, b.injected.erase_faults);
  EXPECT_EQ(a.injected.reads_with_retry, b.injected.reads_with_retry);
  EXPECT_EQ(a.injected.retry_steps, b.injected.retry_steps);
  // ConsumerDefaults must actually exercise the retry path on this run.
  EXPECT_GT(a.injected.reads_with_retry, 0u);
}

// 10k randomized IOs against ConsumerDefaults rates. Invariants checked
// throughout: every acked write reads back its exact token; the injected
// fault counters reconcile with the media layer's observed
// ReliabilityStats; and two identically-seeded runs match bit for bit.
SoakOutcome RunSoak() {
  ConZoneConfig cfg = SmallConfig();
  cfg.fault = FaultConfig::ConsumerDefaults();
  cfg.fault.read_only_spare_floor_blocks = 0;
  auto devr = ConZoneDevice::Create(cfg);
  EXPECT_TRUE(devr.ok()) << devr.status().ToString();
  ConZoneDevice& dev = *devr.value();

  const std::uint64_t zone_bytes = cfg.zone_size_bytes;
  const std::uint64_t slots_per_zone = zone_bytes / 4096;
  constexpr std::uint64_t kZones = 6;
  constexpr std::uint64_t kIos = 10000;

  // expected[z][slot] = token of the acked write, absent if unwritten.
  std::vector<std::map<std::uint64_t, std::uint64_t>> expected(kZones);
  std::vector<std::uint64_t> wp(kZones, 0);  // write pointer, in slots
  Rng rng;
  rng.Seed(20260806);

  SimTime t;
  std::uint64_t salt = 0;
  SoakOutcome out;
  for (std::uint64_t io = 0; io < kIos; ++io) {
    const std::uint64_t z = rng.NextBelow(kZones);
    const std::uint64_t kind = rng.NextBelow(10);
    if (kind < 5) {
      // Sequential append of 1..16 slots at the zone's write pointer.
      std::uint64_t n = 1 + rng.NextBelow(16);
      if (wp[z] + n > slots_per_zone) {
        // Full zone: reset it and restart the log (occasionally exercises
        // the reset path mid-run too).
        auto r = dev.ResetZone(ZoneId{z}, t);
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        t = r.value();
        expected[z].clear();
        wp[z] = 0;
      }
      const std::uint64_t first = z * slots_per_zone + wp[z];
      ++salt;
      auto tokens = Tokens(first, n, salt);
      auto w = TestWrite(dev, first * 4096, n * 4096, t, tokens);
      if (!w.ok()) {
        EXPECT_EQ(w.status().code(), StatusCode::kResourceExhausted)
            << w.status().ToString();
        ++out.io_errors;
        continue;
      }
      t = w.value();
      for (std::uint64_t k = 0; k < n; ++k) expected[z][wp[z] + k] = tokens[k];
      wp[z] += n;
      ++out.ops;
    } else if (kind < 9) {
      // Read 1..8 acked slots starting at a random written position.
      if (wp[z] == 0) continue;
      const std::uint64_t start = rng.NextBelow(wp[z]);
      const std::uint64_t n = std::min<std::uint64_t>(1 + rng.NextBelow(8),
                                                      wp[z] - start);
      const std::uint64_t first = z * slots_per_zone + start;
      std::vector<std::uint64_t> got;
      auto r = TestRead(dev, first * 4096, n * 4096, t, &got);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (!r.ok()) continue;
      t = r.value();
      EXPECT_EQ(got.size(), n);
      if (got.size() != n) continue;
      for (std::uint64_t k = 0; k < n; ++k) {
        EXPECT_EQ(got[k], expected[z][start + k])
            << "corrupt read: zone " << z << " slot " << start + k;
      }
      ++out.ops;
    } else {
      // Periodic flush: drains the buffers through the SLC staging path.
      auto f = dev.Flush(t);
      EXPECT_TRUE(f.ok()) << f.status().ToString();
      t = f.value();
    }
  }

  // Reconcile: what the fault model injected is exactly what the media
  // layer observed and recovered from.
  const ReliabilityStats rel = dev.Reliability();
  const FaultCounters& inj = dev.fault_model().counters();
  EXPECT_EQ(inj.program_faults, rel.program_failures_slc + rel.program_failures_normal);
  EXPECT_EQ(inj.erase_faults, rel.erase_failures_slc + rel.erase_failures_normal);
  EXPECT_EQ(inj.reads_with_retry, rel.reads_with_retry);
  EXPECT_EQ(inj.retry_steps, rel.read_retries);
  EXPECT_EQ(inj.program_faults + inj.erase_faults, rel.RetiredBlocks());
  // The soak must actually exercise the fault paths to mean anything.
  EXPECT_GT(inj.reads_with_retry, 0u);
  EXPECT_GT(inj.program_faults, 0u);

  out.reliability = rel.Summary();
  out.injected = inj;
  out.end_ns = t.ns();
  return out;
}

TEST(FaultSoakTest, TenThousandIosNoInvariantViolationsAndDeterministic) {
  const SoakOutcome a = RunSoak();
  if (::testing::Test::HasFailure()) return;  // invariant details above
  const SoakOutcome b = RunSoak();
  EXPECT_EQ(a.reliability, b.reliability);
  EXPECT_EQ(a.end_ns, b.end_ns);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.io_errors, b.io_errors);
}

}  // namespace
}  // namespace conzone
