// Durable L2P checkpoints (DESIGN.md §12).
//
// Covers: image wire-format round-trip and rejection of corrupt,
// truncated and malformed blobs; ping-pong slot election including
// sequence ties, serial-number wraparound and torn-slot fallback; the
// device-level policy hooks (interval, host flush, CheckpointNow);
// checkpoint-bounded tail scans at remount; reset- and rebuild-epoch
// regressions (a stale image must never resurrect dead mappings); the
// full crash sweep and random-cut matrix with checkpointing enabled;
// bit-identical recovery against a checkpoint-off twin; and an opt-in
// random-interval soak (CONZONE_CRASH_SOAK=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "conzone/conzone.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

ConZoneConfig SmallConfig() {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 20;  // 4 SLC + 16 normal => 16 zones
  cfg.geometry.slc_blocks_per_chip = 4;
  return cfg;
}

ConZoneConfig CrashConfig() {
  ConZoneConfig cfg = SmallConfig();
  cfg.fault.power_loss = true;
  cfg.l2p_log.enabled = true;
  return cfg;
}

/// CrashConfig + checkpointing tuned so short test runs cross the
/// interval and the per-Flush hook both fire.
ConZoneConfig CkptCrashConfig(std::uint64_t interval = 128,
                              std::uint64_t min_flush = 32) {
  ConZoneConfig cfg = CrashConfig();
  cfg.checkpoint.enabled = true;
  cfg.checkpoint.interval_entries = interval;
  cfg.checkpoint.min_flush_entries = min_flush;
  return cfg;
}

/// A representative image exercising every payload section.
CheckpointImage SampleImage(std::uint64_t seq = 3) {
  CheckpointImage img;
  img.seq = seq;
  img.program_seq = 977;
  img.mappings = {{0, 41, 2}, {7, 4096, 3}, {4095, 9, 1}};
  img.zones = {
      ZoneSnap{0, 0, ~0ull, ZoneSnap::kFlagRestorable},
      ZoneSnap{65536, 65536, 7, ZoneSnap::kFlagPatchContiguous},
      ZoneSnap{4096, 0, ~0ull, 0},
      ZoneSnap{0, 0, ~0ull, ZoneSnap::kFlagDegraded},
  };
  img.free_slc = {2, 3};
  img.free_normal = {11, 12, 13};
  return img;
}

std::vector<std::uint64_t> Tokens(std::uint64_t first, std::uint64_t n,
                                  std::uint64_t salt = 0) {
  std::vector<std::uint64_t> t(n);
  for (std::uint64_t i = 0; i < n; ++i) t[i] = (first + i) * 7919 + salt + 1;
  return t;
}

// ---------------------------------------------------------------------------
// Image wire format
// ---------------------------------------------------------------------------

TEST(CheckpointImageTest, EncodeDecodeRoundTrip) {
  const CheckpointImage img = SampleImage();
  const auto blob = img.Encode();
  const auto back = CheckpointImage::Decode(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, img.seq);
  EXPECT_EQ(back->program_seq, img.program_seq);
  EXPECT_EQ(back->mappings, img.mappings);
  EXPECT_EQ(back->zones, img.zones);
  EXPECT_EQ(back->free_slc, img.free_slc);
  EXPECT_EQ(back->free_normal, img.free_normal);
}

TEST(CheckpointImageTest, EmptyImageRoundTrips) {
  CheckpointImage img;
  img.seq = 1;
  const auto back = CheckpointImage::Decode(img.Encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 1u);
  EXPECT_TRUE(back->mappings.empty());
  EXPECT_TRUE(back->zones.empty());
}

TEST(CheckpointImageTest, StridedRunFoldingRoundTripsLosslessly) {
  CheckpointImage img;
  img.seq = 9;
  // A chip-striped zone: equal-length lpn-contiguous runs whose ppns
  // advance by a constant stride, that whole interleave repeating with a
  // second-level stride — the shape Encode folds to one super record.
  std::uint64_t lpn = 0;
  for (std::uint64_t rep = 0; rep < 16; ++rep) {
    for (std::uint64_t w = 0; w < 4; ++w) {
      img.mappings.push_back(MapRun{lpn, 1000 + rep * 24 + w * 40320, 24});
      lpn += 24;
    }
  }
  // A descending progression (the stride wraps as an unsigned delta).
  lpn += 13;
  for (std::uint64_t w = 0; w < 3; ++w) {
    img.mappings.push_back(MapRun{lpn, 500000 - w * 1000, 8});
    lpn += 8;
  }
  // And an irregular tail that must stay per-run.
  img.mappings.push_back(MapRun{lpn + 5, 9, 1});
  img.mappings.push_back(MapRun{lpn + 9, 777, 2});
  const auto blob = img.Encode();
  // Folded: far below one record per run.
  EXPECT_LT(blob.size(), (8 + 3 * img.mappings.size() + 1) * 8);
  const auto back = CheckpointImage::Decode(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->mappings, img.mappings);
}

TEST(CheckpointImageTest, EverySingleByteCorruptionIsRejected) {
  const auto blob = SampleImage().Encode();
  for (std::size_t i = 0; i < blob.size(); ++i) {
    auto bad = blob;
    bad[i] ^= 0xFF;
    EXPECT_FALSE(CheckpointImage::Decode(bad).has_value())
        << "byte " << i << " corruption slipped past the checksum";
  }
}

TEST(CheckpointImageTest, TruncatedAndMisalignedBlobsAreRejected) {
  const auto blob = SampleImage().Encode();
  for (std::size_t len : {std::size_t{0}, std::size_t{8}, blob.size() - 8,
                          blob.size() - 1, blob.size() + 8}) {
    auto bad = blob;
    bad.resize(len);
    EXPECT_FALSE(CheckpointImage::Decode(bad).has_value()) << "len " << len;
  }
}

TEST(CheckpointImageTest, SeqNewerUsesSerialNumberArithmetic) {
  EXPECT_TRUE(CheckpointImage::SeqNewer(2, 1));
  EXPECT_FALSE(CheckpointImage::SeqNewer(1, 2));
  EXPECT_FALSE(CheckpointImage::SeqNewer(5, 5));
  // Wraparound: 0 and 1 are newer than the pre-wrap maximum.
  EXPECT_TRUE(CheckpointImage::SeqNewer(0, ~0ull));
  EXPECT_TRUE(CheckpointImage::SeqNewer(1, ~0ull));
  EXPECT_FALSE(CheckpointImage::SeqNewer(~0ull, 0));
}

// ---------------------------------------------------------------------------
// Slot store: ping-pong, election, torn writes
// ---------------------------------------------------------------------------

TEST(CheckpointStoreTest, PingPongAlwaysTargetsTheOtherSlot) {
  CheckpointStore store;
  EXPECT_EQ(store.NextSlot(), 0);
  EXPECT_EQ(store.NextSeq(), 1u);
  store.Commit(0, SampleImage(1).Encode(), 1, SimTime::FromNanos(100));
  EXPECT_EQ(store.NextSlot(), 1);
  EXPECT_EQ(store.NextSeq(), 2u);
  store.Commit(1, SampleImage(2).Encode(), 2, SimTime::FromNanos(200));
  EXPECT_EQ(store.NextSlot(), 0);
  ASSERT_NE(store.NewestValid(), nullptr);
  EXPECT_EQ(store.NewestValid()->seq, 2u);
}

TEST(CheckpointStoreTest, SequenceTieElectsLowerSlot) {
  CheckpointStore store;
  store.Commit(0, SampleImage(5).Encode(), 5, SimTime::FromNanos(100));
  store.Commit(1, SampleImage(5).Encode(), 5, SimTime::FromNanos(200));
  ASSERT_NE(store.NewestValid(), nullptr);
  EXPECT_EQ(store.NewestValid(), &store.slot(0));
}

TEST(CheckpointStoreTest, WraparoundElectsPostWrapImage) {
  CheckpointStore store;
  store.Commit(0, SampleImage(~0ull).Encode(), ~0ull, SimTime::FromNanos(100));
  store.Commit(1, SampleImage(0).Encode(), 0, SimTime::FromNanos(200));
  ASSERT_NE(store.NewestValid(), nullptr);
  EXPECT_EQ(store.NewestValid(), &store.slot(1));
  EXPECT_EQ(store.NextSeq(), 1u);
}

TEST(CheckpointStoreTest, CutMidWriteTearsOnlyTheInFlightSlot) {
  CheckpointStore store;
  store.Commit(0, SampleImage(1).Encode(), 1, SimTime::FromNanos(1000));
  store.Commit(1, SampleImage(2).Encode(), 2, SimTime::FromNanos(2000));
  // Cut lands after slot 0's completion but inside slot 1's write.
  EXPECT_EQ(store.ApplyPowerCut(SimTime::FromNanos(1500)), 1u);
  ASSERT_NE(store.NewestValid(), nullptr);
  EXPECT_EQ(store.NewestValid()->seq, 1u);
  // The torn slot is reusable as the next target.
  EXPECT_EQ(store.NextSlot(), 1);
}

TEST(CheckpointStoreTest, BothSlotsTornFallsBackToNothing) {
  CheckpointStore store;
  store.Commit(0, SampleImage(1).Encode(), 1, SimTime::FromNanos(1000));
  store.Commit(1, SampleImage(2).Encode(), 2, SimTime::FromNanos(2000));
  EXPECT_EQ(store.ApplyPowerCut(SimTime::FromNanos(500)), 2u);
  EXPECT_EQ(store.NewestValid(), nullptr);
  EXPECT_EQ(store.NextSlot(), 0);
  EXPECT_EQ(store.NextSeq(), 1u);
}

TEST(CheckpointStoreTest, CorruptNewestLosesElectionToOlderImage) {
  CheckpointStore store;
  store.Commit(0, SampleImage(1).Encode(), 1, SimTime::FromNanos(100));
  store.Commit(1, SampleImage(2).Encode(), 2, SimTime::FromNanos(200));
  store.CorruptByteForTest(1, 16);
  ASSERT_NE(store.NewestValid(), nullptr);
  EXPECT_EQ(store.NewestValid()->seq, 1u);
}

// ---------------------------------------------------------------------------
// Device policy hooks and configuration
// ---------------------------------------------------------------------------

TEST(CheckpointDeviceTest, CheckpointNowRequiresEnabledConfig) {
  auto dev = ConZoneDevice::Create(CrashConfig());
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ((*dev)->CheckpointNow(SimTime::Zero()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointDeviceTest, CheckpointingRequiresL2pLog) {
  ConZoneConfig cfg = CkptCrashConfig();
  cfg.l2p_log.enabled = false;
  EXPECT_EQ(ConZoneDevice::Create(cfg).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckpointDeviceTest, EmptyDeviceCheckpointRoundTrips) {
  auto dev = ConZoneDevice::Create(CkptCrashConfig());
  ASSERT_TRUE(dev.ok());
  ConZoneDevice& d = **dev;
  auto ck = d.CheckpointNow(SimTime::Zero());
  ASSERT_TRUE(ck.ok()) << ck.status().ToString();
  EXPECT_EQ(d.recovery_stats().checkpoints_written, 1u);

  ASSERT_TRUE(d.PowerCut(ck.value()).ok());
  auto r = d.Recover(ck.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(d.recovery_stats().checkpoint_loaded, 1u);
  EXPECT_EQ(d.recovery_stats().checkpoint_mappings, 0u);
  EXPECT_EQ(d.mapping().mapped_count(), 0u);
  // The device serves writes again after an image-served empty mount.
  EXPECT_TRUE(TestWrite(d, 0, 4096, r.value()).ok());
}

TEST(CheckpointDeviceTest, IntervalPolicyWritesCheckpointsWithoutHostFlush) {
  ConZoneConfig cfg = CkptCrashConfig(/*interval=*/64);
  cfg.checkpoint.on_host_flush = false;
  auto dev = ConZoneDevice::Create(cfg);
  ASSERT_TRUE(dev.ok());
  ConZoneDevice& d = **dev;
  const std::uint64_t zone_bytes = d.config().zone_size_bytes;
  SimTime t;
  for (std::uint64_t z = 0; z < 4; ++z) {
    auto w = TestWrite(d, z * zone_bytes, zone_bytes, t);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    t = w.value();
  }
  EXPECT_GT(d.recovery_stats().checkpoints_written, 0u);
}

TEST(CheckpointDeviceTest, HostFlushPolicyHonorsMinimumEntryFloor) {
  auto dev = ConZoneDevice::Create(
      CkptCrashConfig(/*interval=*/1 << 30, /*min_flush=*/16));
  ASSERT_TRUE(dev.ok());
  ConZoneDevice& d = **dev;
  // 4 slots < the 16-entry floor: the flush must not pay for an image.
  auto w = TestWrite(d, 0, 4 * 4096, SimTime::Zero());
  ASSERT_TRUE(w.ok());
  auto f = d.Flush(w.value());
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(d.recovery_stats().checkpoints_written, 0u);
  // 28 more cross it: the next flush checkpoints.
  auto w2 = TestWrite(d, 4 * 4096, 28 * 4096, f.value());
  ASSERT_TRUE(w2.ok());
  auto f2 = d.Flush(w2.value());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(d.recovery_stats().checkpoints_written, 1u);
}

// ---------------------------------------------------------------------------
// Checkpoint-bounded remount
// ---------------------------------------------------------------------------

TEST(CheckpointDeviceTest, MountSkipsBlocksOlderThanTheWatermark) {
  // Only explicit checkpoints: the tail is exactly what lands after
  // CheckpointNow.
  ConZoneConfig cfg = CkptCrashConfig(/*interval=*/1 << 30);
  cfg.checkpoint.on_host_flush = false;
  auto dev = ConZoneDevice::Create(cfg);
  ASSERT_TRUE(dev.ok());
  ConZoneDevice& d = **dev;
  const std::uint64_t zone_bytes = d.config().zone_size_bytes;
  const std::uint64_t zone_slots = zone_bytes / 4096;

  // Two full zones reach media, then checkpoint, then a small tail.
  const auto tok0 = Tokens(0, zone_slots);
  const auto tok1 = Tokens(zone_slots, zone_slots);
  auto w0 = TestWrite(d, 0, zone_bytes, SimTime::Zero(), tok0);
  ASSERT_TRUE(w0.ok());
  auto w1 = TestWrite(d, zone_bytes, zone_bytes, w0.value(), tok1);
  ASSERT_TRUE(w1.ok());
  auto f = d.Flush(w1.value());
  ASSERT_TRUE(f.ok());
  auto ck = d.CheckpointNow(f.value());
  ASSERT_TRUE(ck.ok()) << ck.status().ToString();

  const auto tail = Tokens(9000, 16);
  auto w2 = TestWrite(d, 2 * zone_bytes, 16 * 4096, ck.value(), tail);
  ASSERT_TRUE(w2.ok());
  auto f2 = d.Flush(w2.value());
  ASSERT_TRUE(f2.ok());

  ASSERT_TRUE(d.PowerCut(f2.value()).ok());
  auto r = d.Recover(f2.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const RecoveryStats& rs = d.recovery_stats();
  EXPECT_EQ(rs.checkpoint_loaded, 1u);
  EXPECT_GT(rs.checkpoint_mappings, 0u);
  // The checkpointed zones' blocks sit below the watermark: the scan
  // skipped more used pages than it sensed.
  EXPECT_GT(rs.pages_skipped, 0u);
  EXPECT_GT(rs.pages_skipped, rs.pages_scanned);

  std::vector<std::uint64_t> got;
  ASSERT_TRUE(TestRead(d, 0, zone_bytes, r.value(), &got).ok());
  EXPECT_EQ(got, tok0);
  ASSERT_TRUE(TestRead(d, zone_bytes, zone_bytes, r.value(), &got).ok());
  EXPECT_EQ(got, tok1);
  ASSERT_TRUE(TestRead(d, 2 * zone_bytes, 16 * 4096, r.value(), &got).ok());
  EXPECT_EQ(got, tail);
  EXPECT_EQ(d.zones().Info(ZoneId{2}).write_pointer, 16 * 4096u);
}

TEST(CheckpointDeviceTest, ZoneResetAfterCheckpointDoesNotResurrectOldEpoch) {
  ConZoneConfig cfg = CkptCrashConfig(/*interval=*/1 << 30);
  cfg.checkpoint.on_host_flush = false;
  auto dev = ConZoneDevice::Create(cfg);
  ASSERT_TRUE(dev.ok());
  ConZoneDevice& d = **dev;
  const std::uint64_t zone_bytes = d.config().zone_size_bytes;
  const std::uint64_t zone_slots = zone_bytes / 4096;

  // Epoch 1 fills the zone and is captured by a checkpoint image.
  auto w = TestWrite(d, 0, zone_bytes, SimTime::Zero(), Tokens(0, zone_slots));
  ASSERT_TRUE(w.ok());
  auto f = d.Flush(w.value());
  ASSERT_TRUE(f.ok());
  auto ck = d.CheckpointNow(f.value());
  ASSERT_TRUE(ck.ok());

  // Epoch 2: reset, rewrite a short prefix, make it durable, cut.
  auto rz = d.ResetZone(ZoneId{0}, ck.value());
  ASSERT_TRUE(rz.ok()) << rz.status().ToString();
  const auto fresh = Tokens(5000, 8);
  auto w2 = TestWrite(d, 0, 8 * 4096, rz.value(), fresh);
  ASSERT_TRUE(w2.ok());
  auto f2 = d.Flush(w2.value());
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(d.PowerCut(f2.value()).ok());
  auto r = d.Recover(f2.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // The stale image entries pointed at erased or re-owned slots and must
  // have been dropped, not replayed.
  EXPECT_EQ(d.recovery_stats().checkpoint_loaded, 1u);
  EXPECT_GT(d.recovery_stats().checkpoint_stale_dropped, 0u);
  EXPECT_EQ(d.zones().Info(ZoneId{0}).write_pointer, 8 * 4096u);
  std::vector<std::uint64_t> got;
  ASSERT_TRUE(TestRead(d, 0, 8 * 4096, r.value(), &got).ok());
  EXPECT_EQ(got, fresh);
  // Nothing from epoch 1 is readable past the recovered pointer.
  EXPECT_FALSE(TestRead(d, 8 * 4096, 4096, r.value()).ok());
}

// ---------------------------------------------------------------------------
// Crash sweeps with checkpointing enabled (tier-1 property suite)
// ---------------------------------------------------------------------------

TEST(CheckpointCrashTest, EveryOpBoundaryRecoversConsistent) {
  constexpr std::size_t kOps = 48;
  for (std::size_t k = 1; k <= kOps; ++k) {
    CrashHarness::Options opt;
    opt.seed = 42;
    CrashHarness h(CkptCrashConfig(), opt);
    ASSERT_TRUE(h.Init().ok());
    ASSERT_TRUE(h.RunOps(k).ok()) << "ops=" << k;
    const double frac = (k % 3 == 0) ? 0.0 : (k % 3 == 1) ? 0.5 : 1.0;
    ASSERT_TRUE(h.Cut(frac).ok()) << "ops=" << k;
    Status st = h.RecoverAndVerify();
    ASSERT_TRUE(st.ok()) << "cut after op " << k << " (frac " << frac
                         << "): " << st.message();
  }
}

TEST(CheckpointCrashTest, RandomCutTimesAcrossSeedsRecoverConsistent) {
  Rng pick(0xD00DF00Dull);
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    CrashHarness::Options opt;
    opt.seed = seed;
    CrashHarness h(CkptCrashConfig(), opt);
    ASSERT_TRUE(h.Init().ok());
    ASSERT_TRUE(h.RunOps(10 + pick.NextBelow(40)).ok()) << "seed=" << seed;
    ASSERT_TRUE(h.Cut(pick.NextDouble() * 1.5).ok()) << "seed=" << seed;
    Status st = h.RecoverAndVerify();
    ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << st.message();
  }
}

TEST(CheckpointCrashTest, CutsDuringCheckpointWritesFallBackCleanly) {
  // A tight interval keeps an image write in flight much of the time, so
  // random cuts repeatedly land inside one; recovery must fall back to
  // the previous image (or the full scan) and stay consistent.
  CrashHarness::Options opt;
  opt.seed = 13;
  opt.flush_prob = 0.25;
  CrashHarness h(CkptCrashConfig(/*interval=*/32, /*min_flush=*/8), opt);
  ASSERT_TRUE(h.Init().ok());
  Rng pick(0x7EA4ull);
  for (int round = 0; round < 40; ++round) {
    ASSERT_TRUE(h.RunOps(6 + pick.NextBelow(18)).ok()) << "round=" << round;
    ASSERT_TRUE(h.Cut(pick.NextDouble() * 1.5).ok()) << "round=" << round;
    Status st = h.RecoverAndVerify();
    ASSERT_TRUE(st.ok()) << "round " << round << ": " << st.message();
  }
  const RecoveryStats& rs = h.device().recovery_stats();
  EXPECT_GT(rs.checkpoints_written, 0u);
  EXPECT_GT(rs.checkpoints_torn, 0u) << "no cut ever landed mid-image";
  EXPECT_GT(rs.checkpoint_loaded, 0u);
}

/// The durable readable prefix of one member zone, slot by slot.
std::vector<std::uint64_t> MemberZonePrefix(StorageDevice& dev,
                                            std::uint64_t zone, SimTime now) {
  const DeviceInfo di = dev.info();
  const std::uint64_t mzs = di.zone_size_bytes;
  std::vector<std::uint64_t> out;
  for (std::uint64_t off = 0; off < mzs; off += di.io_alignment) {
    auto r = dev.Read(IoRequest{zone * mzs + off, di.io_alignment, now, {},
                                /*want_tokens=*/true});
    if (!r.ok()) break;
    out.push_back(r.value().tokens[0]);
  }
  return out;
}

TEST(CheckpointCrashTest, FastPathRecoversBitIdenticalToFullScan) {
  // Twin devices, same seed, same ops, same cut: one mounts via the
  // newest image + tail scan, the reference ignores images and does the
  // full scan. Recovered state must match bit for bit. (The checker
  // fingerprint mixes the remount DURATION — which the fast path exists
  // to change — so the comparison reads the state out directly.)
  ConZoneConfig fast_cfg = CkptCrashConfig(/*interval=*/64, /*min_flush=*/16);
  ConZoneConfig full_cfg = fast_cfg;
  full_cfg.checkpoint.load_at_mount = false;

  CrashHarness::Options opt;
  opt.seed = 2718;
  CrashHarness fast(fast_cfg, opt);
  CrashHarness full(full_cfg, opt);
  ASSERT_TRUE(fast.Init().ok());
  ASSERT_TRUE(full.Init().ok());

  Rng pick(0xFA57ull);
  for (int round = 0; round < 4; ++round) {
    const std::size_t ops = 12 + pick.NextBelow(24);
    const double frac = pick.NextDouble() * 1.3;
    ASSERT_TRUE(fast.RunOps(ops).ok()) << "round=" << round;
    ASSERT_TRUE(full.RunOps(ops).ok()) << "round=" << round;
    ASSERT_TRUE(fast.Cut(frac).ok()) << "round=" << round;
    ASSERT_TRUE(full.Cut(frac).ok()) << "round=" << round;
    Status sa = fast.RecoverAndVerify();
    ASSERT_TRUE(sa.ok()) << "fast round " << round << ": " << sa.message();
    Status sb = full.RecoverAndVerify();
    ASSERT_TRUE(sb.ok()) << "full round " << round << ": " << sb.message();

    const std::uint32_t zones = fast.device().info().num_zones;
    for (std::uint32_t z = 0; z < zones; ++z) {
      EXPECT_EQ(fast.device().zones().Info(ZoneId{z}).write_pointer,
                full.device().zones().Info(ZoneId{z}).write_pointer)
          << "round " << round << " zone " << z;
      EXPECT_EQ(MemberZonePrefix(fast.device(), z, fast.now()),
                MemberZonePrefix(full.device(), z, full.now()))
          << "round " << round << " zone " << z;
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ma, mb;
    fast.device().mapping().ForEachMapped(
        [&](Lpn l, Ppn p) { ma.emplace_back(l.value(), p.value()); });
    full.device().mapping().ForEachMapped(
        [&](Lpn l, Ppn p) { mb.emplace_back(l.value(), p.value()); });
    EXPECT_EQ(ma, mb) << "round " << round;
  }
  // The comparison is only meaningful if the fast path really took the
  // image route at least once.
  EXPECT_GT(fast.device().recovery_stats().checkpoint_loaded, 0u);
  EXPECT_EQ(full.device().recovery_stats().checkpoint_loaded, 0u);
}

// ---------------------------------------------------------------------------
// Interaction with live member rebuild (PR 7 ReplaceMember)
// ---------------------------------------------------------------------------

TEST(CheckpointCrashTest, MidRebuildCheckpointDoesNotResurrectStaleMappings) {
  // Every rebuild tick ends in a member Flush, so min_flush_entries=1
  // makes the fresh member checkpoint continuously while rows stream in.
  // A cut + image-served remount mid-rebuild must leave only the durable
  // row prefix — never rows the image predates or postdates.
  ConZoneConfig cfg = CkptCrashConfig(/*interval=*/256, /*min_flush=*/1);

  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto dev = ConZoneDevice::Create(cfg.ForShard(i, 5));
    ASSERT_TRUE(dev.ok());
    devs.push_back(std::move(dev).value());
  }
  RedundantVolumeOptions opt;
  opt.stripe_bytes = 16 * kKiB;
  opt.rows_per_tick = 4;
  auto volr = RedundantVolume::Create(std::move(devs), opt);
  ASSERT_TRUE(volr.ok());
  RedundantVolume& v = **volr;
  const std::uint64_t zb = v.info().zone_size_bytes;

  SimTime t;
  auto w = v.Write(IoRequest{0, zb, t, Tokens(0, zb / 4096)});
  ASSERT_TRUE(w.ok());
  auto w2 = v.Write(IoRequest{zb, zb / 2, w.value().done,
                              Tokens(4000, zb / 2 / 4096)});
  ASSERT_TRUE(w2.ok());
  SimTime now = w2.value().done;

  auto freshr = ConZoneDevice::Create(cfg.ForShard(9, 5));
  ASSERT_TRUE(freshr.ok());
  ConZoneDevice* fresh = freshr.value().get();
  ASSERT_TRUE(v.MarkFailed(1).ok());
  ASSERT_TRUE(v.ReplaceMember(1, std::move(freshr).value(), now).ok());

  for (int i = 0; i < 3 && v.rebuild_active(); ++i) {
    auto tick = v.Tick(now);
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
  }
  ASSERT_TRUE(v.rebuild_active());
  // The per-tick flushes really did write images before the cut.
  ASSERT_GT(fresh->recovery_stats().checkpoints_written, 0u);
  ASSERT_TRUE(fresh->PowerCut(now).ok());

  auto dead = v.Tick(now);
  ASSERT_FALSE(dead.ok());

  auto rec = fresh->Recover(now);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  now = rec.value();
  int ticks = 0;
  for (; ticks < 100000 && v.rebuild_active(); ++ticks) {
    auto tick = v.Tick(now);
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
  }
  ASSERT_FALSE(v.rebuild_active()) << "rebuild did not finish in " << ticks;
  EXPECT_EQ(v.Redundancy().rebuilds_completed, 1u);

  const std::uint32_t zones = v.member(0).info().num_zones;
  for (std::uint32_t z = 0; z < zones; ++z) {
    EXPECT_EQ(MemberZonePrefix(v.member(1), z, now),
              MemberZonePrefix(v.member(0), z, now))
        << "zone " << z;
  }
}

// ---------------------------------------------------------------------------
// Opt-in soak (CI crash-matrix label / CONZONE_CRASH_SOAK=1)
// ---------------------------------------------------------------------------

TEST(CheckpointCrashSoakTest, ManyRandomCutsWithRandomIntervalsSoak) {
  if (std::getenv("CONZONE_CRASH_SOAK") == nullptr) {
    GTEST_SKIP() << "set CONZONE_CRASH_SOAK=1 to run the 10k-cut soak";
  }
  Rng pick(0xC4B7ull);
  constexpr int kInstances = 5;
  constexpr int kCutsPerInstance = 2000;
  for (int inst = 0; inst < kInstances; ++inst) {
    // Random interval per instance: 16..4096 entries, random flush floor.
    const std::uint64_t interval = 16ull << pick.NextBelow(9);
    const std::uint64_t min_flush = 1 + pick.NextBelow(interval);
    CrashHarness::Options opt;
    opt.seed = 0x50A7ull + static_cast<std::uint64_t>(inst);
    CrashHarness h(CkptCrashConfig(interval, min_flush), opt);
    ASSERT_TRUE(h.Init().ok());
    for (int round = 0; round < kCutsPerInstance; ++round) {
      ASSERT_TRUE(h.RunOps(3 + pick.NextBelow(15)).ok())
          << "inst=" << inst << " round=" << round;
      ASSERT_TRUE(h.Cut(pick.NextDouble() * 1.5).ok())
          << "inst=" << inst << " round=" << round;
      Status st = h.RecoverAndVerify();
      ASSERT_TRUE(st.ok()) << "inst " << inst << " (interval " << interval
                           << ") round " << round << ": " << st.message();
    }
    EXPECT_EQ(h.device().recovery_stats().recoveries,
              static_cast<std::uint64_t>(kCutsPerInstance));
  }
}

}  // namespace
}  // namespace conzone
