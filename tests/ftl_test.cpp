// Unit tests for the FTL: mapping table (map bits), L2P cache (buckets,
// LRU, pinning) and the translator's three search strategies.
#include <gtest/gtest.h>

#include "ftl/l2p_cache.hpp"
#include "ftl/mapping.hpp"
#include "ftl/translator.hpp"

namespace conzone {
namespace {

MappingGeometry SmallMapGeo() {
  MappingGeometry g;
  g.num_lpns = 16384;       // 4 zones of 4096
  g.lpns_per_chunk = 1024;  // 4 chunks per zone
  g.lpns_per_zone = 4096;
  g.entries_per_map_page = 4096;
  return g;
}

L2pCacheConfig SmallCacheCfg(std::uint64_t entries = 8) {
  L2pCacheConfig c;
  c.capacity_bytes = entries * 4;
  c.entry_bytes = 4;
  c.lpns_per_chunk = 1024;
  c.lpns_per_zone = 4096;
  return c;
}

// --- mapping table ---

TEST(MappingTableTest, SetGetUnmap) {
  MappingTable t(SmallMapGeo());
  EXPECT_FALSE(t.Get(Lpn{5}).mapped());
  t.Set(Lpn{5}, Ppn{100});
  EXPECT_TRUE(t.Get(Lpn{5}).mapped());
  EXPECT_EQ(t.Get(Lpn{5}).ppn, Ppn{100});
  EXPECT_EQ(t.Get(Lpn{5}).gran, MapGranularity::kPage);
  EXPECT_EQ(t.mapped_count(), 1u);
  t.Unmap(Lpn{5});
  EXPECT_FALSE(t.Get(Lpn{5}).mapped());
  EXPECT_EQ(t.mapped_count(), 0u);
}

TEST(MappingTableTest, SetResetsGranularity) {
  MappingTable t(SmallMapGeo());
  t.Set(Lpn{0}, Ppn{1});
  t.SetAggregated(Lpn{0}, 1, MapGranularity::kChunk);
  EXPECT_EQ(t.Get(Lpn{0}).gran, MapGranularity::kChunk);
  t.Set(Lpn{0}, Ppn{2});  // remap downgrades to page
  EXPECT_EQ(t.Get(Lpn{0}).gran, MapGranularity::kPage);
}

TEST(MappingTableTest, AggregateAndDowngradeRanges) {
  MappingTable t(SmallMapGeo());
  for (std::uint64_t i = 0; i < 1024; ++i) t.Set(Lpn{i}, Ppn{i});
  t.SetAggregated(Lpn{0}, 1024, MapGranularity::kChunk);
  EXPECT_EQ(t.Get(Lpn{0}).gran, MapGranularity::kChunk);
  EXPECT_EQ(t.Get(Lpn{1023}).gran, MapGranularity::kChunk);
  t.DowngradeToPage(Lpn{0}, 1024);
  EXPECT_EQ(t.Get(Lpn{512}).gran, MapGranularity::kPage);
  // PPNs survive bit flips — the table is always a full page map.
  EXPECT_EQ(t.Get(Lpn{512}).ppn, Ppn{512});
}

TEST(MappingTableTest, AddressHelpers) {
  MappingTable t(SmallMapGeo());
  EXPECT_EQ(t.ChunkOf(Lpn{1025}).value(), 1u);
  EXPECT_EQ(t.ZoneOf(Lpn{4097}).value(), 1u);
  EXPECT_EQ(t.ChunkBase(ChunkId{2}), Lpn{2048});
  EXPECT_EQ(t.ZoneBase(ZoneId{1}), Lpn{4096});
  EXPECT_EQ(t.MapPageOf(Lpn{4095}), 0u);
  EXPECT_EQ(t.MapPageOf(Lpn{4096}), 1u);
  EXPECT_EQ(t.NumMapPages(), 4u);
}

// --- l2p cache ---

TEST(L2PCacheTest, HitRefreshesRecency) {
  L2PCache c(SmallCacheCfg(2));
  c.Insert({MapGranularity::kPage, 1}, Ppn{10});
  c.Insert({MapGranularity::kPage, 2}, Ppn{20});
  // Touch entry 1, then insert a third: entry 2 must be the victim.
  EXPECT_TRUE(c.Lookup({MapGranularity::kPage, 1}).has_value());
  c.Insert({MapGranularity::kPage, 3}, Ppn{30});
  EXPECT_TRUE(c.Peek({MapGranularity::kPage, 1}).has_value());
  EXPECT_FALSE(c.Peek({MapGranularity::kPage, 2}).has_value());
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(L2PCacheTest, GranularityIsPartOfTheKey) {
  L2PCache c(SmallCacheCfg(4));
  c.Insert({MapGranularity::kPage, 0}, Ppn{1});
  c.Insert({MapGranularity::kChunk, 0}, Ppn{2});
  c.Insert({MapGranularity::kZone, 0}, Ppn{3});
  EXPECT_EQ(c.Peek({MapGranularity::kPage, 0}).value(), Ppn{1});
  EXPECT_EQ(c.Peek({MapGranularity::kChunk, 0}).value(), Ppn{2});
  EXPECT_EQ(c.Peek({MapGranularity::kZone, 0}).value(), Ppn{3});
}

TEST(L2PCacheTest, PinnedEntriesSurviveEviction) {
  L2PCache c(SmallCacheCfg(3));
  c.Insert({MapGranularity::kZone, 0}, Ppn{1}, /*pinned=*/true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    c.Insert({MapGranularity::kPage, i}, Ppn{100 + i});
  }
  EXPECT_TRUE(c.Peek({MapGranularity::kZone, 0}).has_value());
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.pinned_count(), 1u);
}

TEST(L2PCacheTest, AllPinnedRejectsUnpinnedInsert) {
  L2PCache c(SmallCacheCfg(2));
  c.Insert({MapGranularity::kZone, 0}, Ppn{1}, true);
  c.Insert({MapGranularity::kZone, 1}, Ppn{2}, true);
  c.Insert({MapGranularity::kPage, 9}, Ppn{3});
  EXPECT_FALSE(c.Peek({MapGranularity::kPage, 9}).has_value());
  EXPECT_EQ(c.stats().rejected_insertions, 1u);
}

TEST(L2PCacheTest, EvictCoveredByRemovesFinerEntries) {
  L2PCache c(SmallCacheCfg(16));
  c.Insert({MapGranularity::kPage, 100}, Ppn{1});
  c.Insert({MapGranularity::kPage, 5000}, Ppn{2});   // different zone
  c.Insert({MapGranularity::kChunk, 0}, Ppn{3});     // chunk 0 of zone 0
  c.Insert({MapGranularity::kZone, 0}, Ppn{4}, true);
  c.EvictCoveredBy({MapGranularity::kZone, 0});
  EXPECT_FALSE(c.Peek({MapGranularity::kPage, 100}).has_value());
  EXPECT_FALSE(c.Peek({MapGranularity::kChunk, 0}).has_value());
  EXPECT_TRUE(c.Peek({MapGranularity::kPage, 5000}).has_value());
  EXPECT_TRUE(c.Peek({MapGranularity::kZone, 0}).has_value());
}

TEST(L2PCacheTest, InvalidateLpnRangeRemovesOverlaps) {
  L2PCache c(SmallCacheCfg(16));
  c.Insert({MapGranularity::kPage, 4096}, Ppn{1});
  c.Insert({MapGranularity::kChunk, 4}, Ppn{2});  // lpns 4096..5119
  c.Insert({MapGranularity::kZone, 1}, Ppn{3});   // lpns 4096..8191
  c.Insert({MapGranularity::kPage, 0}, Ppn{4});   // untouched
  c.InvalidateLpnRange(Lpn{4096}, 1024);
  EXPECT_FALSE(c.Peek({MapGranularity::kPage, 4096}).has_value());
  EXPECT_FALSE(c.Peek({MapGranularity::kChunk, 4}).has_value());
  EXPECT_FALSE(c.Peek({MapGranularity::kZone, 1}).has_value());
  EXPECT_TRUE(c.Peek({MapGranularity::kPage, 0}).has_value());
}

TEST(L2PCacheTest, StatsTrackHitRate) {
  L2PCache c(SmallCacheCfg(4));
  c.Insert({MapGranularity::kPage, 1}, Ppn{1});
  (void)c.Lookup({MapGranularity::kPage, 1});
  (void)c.Lookup({MapGranularity::kPage, 2});
  EXPECT_EQ(c.stats().lookups, 2u);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(c.stats().HitRate(), 0.5);
}

TEST(L2PCacheTest, KeyForComputesUnitIndex) {
  L2PCache c(SmallCacheCfg(4));
  EXPECT_EQ(c.KeyFor(MapGranularity::kPage, Lpn{4097}).index, 4097u);
  EXPECT_EQ(c.KeyFor(MapGranularity::kChunk, Lpn{4097}).index, 4u);
  EXPECT_EQ(c.KeyFor(MapGranularity::kZone, Lpn{4097}).index, 1u);
}

// --- l2p cache: eviction order & capacity (pins the intrusive-LRU
// rewrite against the seed list+map semantics) ---

TEST(L2PCacheTest, EvictionFollowsExactLruOrder) {
  L2PCache c(SmallCacheCfg(4));
  for (std::uint64_t i = 0; i < 4; ++i) {
    c.Insert({MapGranularity::kPage, i}, Ppn{i});
  }
  // Recency now (most..least): 3 2 1 0. Touch 0 and 2: 2 0 3 1.
  EXPECT_TRUE(c.Lookup({MapGranularity::kPage, 0}).has_value());
  EXPECT_TRUE(c.Lookup({MapGranularity::kPage, 2}).has_value());
  // Each insert at capacity evicts exactly the current LRU entry.
  c.Insert({MapGranularity::kPage, 10}, Ppn{10});  // evicts 1
  EXPECT_FALSE(c.Peek({MapGranularity::kPage, 1}).has_value());
  c.Insert({MapGranularity::kPage, 11}, Ppn{11});  // evicts 3
  EXPECT_FALSE(c.Peek({MapGranularity::kPage, 3}).has_value());
  c.Insert({MapGranularity::kPage, 12}, Ppn{12});  // evicts 0
  EXPECT_FALSE(c.Peek({MapGranularity::kPage, 0}).has_value());
  EXPECT_TRUE(c.Peek({MapGranularity::kPage, 2}).has_value());
  EXPECT_EQ(c.stats().evictions, 3u);
  EXPECT_EQ(c.size(), 4u);
}

TEST(L2PCacheTest, RefreshInPlaceUpdatesValueAndRecency) {
  L2PCache c(SmallCacheCfg(2));
  c.Insert({MapGranularity::kPage, 1}, Ppn{10});
  c.Insert({MapGranularity::kPage, 2}, Ppn{20});
  c.Insert({MapGranularity::kPage, 1}, Ppn{11});  // refresh: new ppn, MRU
  EXPECT_EQ(c.Peek({MapGranularity::kPage, 1}).value(), Ppn{11});
  EXPECT_EQ(c.stats().insertions, 2u);  // refresh is not a new insertion
  c.Insert({MapGranularity::kPage, 3}, Ppn{30});  // evicts 2, not 1
  EXPECT_TRUE(c.Peek({MapGranularity::kPage, 1}).has_value());
  EXPECT_FALSE(c.Peek({MapGranularity::kPage, 2}).has_value());
}

TEST(L2PCacheTest, RefreshCanFlipPinnedState) {
  L2PCache c(SmallCacheCfg(2));
  c.Insert({MapGranularity::kZone, 0}, Ppn{1}, /*pinned=*/true);
  EXPECT_EQ(c.pinned_count(), 1u);
  c.Insert({MapGranularity::kZone, 0}, Ppn{1}, /*pinned=*/false);
  EXPECT_EQ(c.pinned_count(), 0u);
  c.Insert({MapGranularity::kZone, 0}, Ppn{1}, /*pinned=*/true);
  EXPECT_EQ(c.pinned_count(), 1u);
}

TEST(L2PCacheTest, CapacityNeverExceededUnderChurn) {
  L2PCache c(SmallCacheCfg(8));
  for (std::uint64_t i = 0; i < 1000; ++i) {
    c.Insert({MapGranularity::kPage, i * 37}, Ppn{i});
    ASSERT_LE(c.size(), 8u);
  }
  EXPECT_EQ(c.size(), 8u);
  EXPECT_EQ(c.stats().insertions, 1000u);
  EXPECT_EQ(c.stats().evictions, 992u);
  // The survivors are exactly the 8 most recently inserted keys.
  for (std::uint64_t i = 992; i < 1000; ++i) {
    EXPECT_TRUE(c.Peek({MapGranularity::kPage, i * 37}).has_value());
  }
}

TEST(L2PCacheTest, EraseThenReinsertReusesCapacity) {
  L2PCache c(SmallCacheCfg(4));
  for (std::uint64_t i = 0; i < 4; ++i) {
    c.Insert({MapGranularity::kPage, i}, Ppn{i});
  }
  c.Erase({MapGranularity::kPage, 2});
  EXPECT_EQ(c.size(), 3u);
  c.Insert({MapGranularity::kPage, 99}, Ppn{99});
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.stats().evictions, 0u);  // freed capacity, no eviction needed
  EXPECT_TRUE(c.Peek({MapGranularity::kPage, 99}).has_value());
}

TEST(L2PCacheTest, ZeroCapacityCacheAcceptsNothing) {
  L2PCache c(SmallCacheCfg(0));
  c.Insert({MapGranularity::kPage, 1}, Ppn{1});
  EXPECT_EQ(c.size(), 0u);
  EXPECT_FALSE(c.Lookup({MapGranularity::kPage, 1}).has_value());
  EXPECT_EQ(c.stats().lookups, 1u);
  EXPECT_EQ(c.stats().hits, 0u);
}

TEST(L2PCacheTest, HeavyChurnKeepsHashIndexConsistent) {
  // Backward-shift deletion stress: interleaved insert/erase with keys
  // that collide across granularities; every surviving entry must stay
  // findable with its exact value.
  L2PCache c(SmallCacheCfg(32));
  for (std::uint64_t round = 0; round < 50; ++round) {
    for (std::uint64_t i = 0; i < 32; ++i) {
      c.Insert({MapGranularity::kPage, round * 32 + i}, Ppn{round * 32 + i});
    }
    for (std::uint64_t i = 0; i < 16; ++i) {
      c.Erase({MapGranularity::kPage, round * 32 + i * 2});
    }
    for (std::uint64_t i = 0; i < 32; ++i) {
      const std::uint64_t k = round * 32 + i;
      auto hit = c.Peek({MapGranularity::kPage, k});
      if (i % 2 == 0 && hit.has_value()) FAIL() << "erased key resurfaced: " << k;
      if (i % 2 == 1) {
        ASSERT_TRUE(hit.has_value()) << "lost key " << k;
        EXPECT_EQ(hit.value(), Ppn{k});
      }
    }
  }
}

// --- translator ---

/// Resolver over a flat imaginary layout: aggregated unit i maps lpn to
/// ppn = 100000*gran + lpn (keeps the math visible in expectations).
class FlatResolver : public PhysicalResolver {
 public:
  std::optional<Ppn> ResolveAggregated(MapGranularity gran, std::uint64_t,
                                       Lpn lpn) const override {
    return Ppn{100000ull * static_cast<std::uint64_t>(gran) + lpn.value()};
  }
};

class TranslatorTest : public ::testing::Test {
 protected:
  TranslatorTest()
      : table_(SmallMapGeo()), cache_(SmallCacheCfg(64)) {}

  Translator Make(L2pSearchStrategy s, bool hybrid = true,
                  std::uint32_t prefetch = 0) {
    return Translator(table_, cache_, resolver_, TranslatorConfig{s, hybrid, prefetch});
  }

  /// Map zone 0 fully, zone-aggregated; zone 1 chunk-aggregated in chunk
  /// 4 only; lpns 8192.. page-mapped.
  void PopulateMixed() {
    for (std::uint64_t i = 0; i < 12288; ++i) table_.Set(Lpn{i}, Ppn{7000000 + i});
    table_.SetAggregated(Lpn{0}, 4096, MapGranularity::kZone);
    table_.SetAggregated(Lpn{4096}, 1024, MapGranularity::kChunk);
  }

  MappingTable table_;
  L2PCache cache_;
  FlatResolver resolver_;
};

TEST_F(TranslatorTest, UnmappedLpnFails) {
  Translator tr = Make(L2pSearchStrategy::kBitmap);
  EXPECT_EQ(tr.Translate(Lpn{99}).status().code(), StatusCode::kOutOfRange);
}

TEST_F(TranslatorTest, BitmapFetchesExactlyOnce) {
  PopulateMixed();
  Translator tr = Make(L2pSearchStrategy::kBitmap);
  auto r = tr.Translate(Lpn{123});  // zone-aggregated
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().cache_hit);
  EXPECT_EQ(r.value().map_pages_fetched.size(), 1u);
  EXPECT_EQ(r.value().gran, MapGranularity::kZone);
  EXPECT_EQ(r.value().ppn, Ppn{200000 + 123});  // resolver(kZone)
  // Second read of anywhere in zone 0: cache hit through the zone entry.
  auto r2 = tr.Translate(Lpn{4000});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.value().cache_hit);
  EXPECT_EQ(tr.stats().map_fetches, 1u);
}

TEST_F(TranslatorTest, MultipleWalksDownTheGranularities) {
  PopulateMixed();
  Translator tr = Make(L2pSearchStrategy::kMultiple);
  // Page-mapped lpn far from zone/chunk bases: LZA, LCA, LPA = 3 fetches.
  auto r = tr.Translate(Lpn{8192 + 1500});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().map_pages_fetched.size(), 3u);
  EXPECT_EQ(r.value().gran, MapGranularity::kPage);
  EXPECT_EQ(r.value().ppn, Ppn{7000000 + 8192 + 1500});
}

TEST_F(TranslatorTest, MultipleStopsEarlyOnZoneAggregate) {
  PopulateMixed();
  Translator tr = Make(L2pSearchStrategy::kMultiple);
  auto r = tr.Translate(Lpn{2000});  // zone 0, aggregated
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().map_pages_fetched.size(), 1u);
  EXPECT_EQ(r.value().gran, MapGranularity::kZone);
}

TEST_F(TranslatorTest, MultipleChunkCostsTwoFetches) {
  PopulateMixed();
  Translator tr = Make(L2pSearchStrategy::kMultiple);
  auto r = tr.Translate(Lpn{4096 + 500});  // chunk-aggregated, chunk base == zone base
  ASSERT_TRUE(r.ok());
  // Zone base IS the chunk base here, so the first fetch answers: 1 fetch.
  EXPECT_EQ(r.value().map_pages_fetched.size(), 1u);
  EXPECT_EQ(r.value().gran, MapGranularity::kChunk);
}

TEST_F(TranslatorTest, PinnedMissImpliesPage) {
  PopulateMixed();
  Translator tr = Make(L2pSearchStrategy::kPinned);
  // Zone aggregate generated -> pinned into the cache.
  tr.OnAggregateGenerated(MapGranularity::kZone, 0, Ppn{100});
  auto hit = tr.Translate(Lpn{55});
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().cache_hit);
  // Page-mapped miss: exactly one fetch.
  auto r = tr.Translate(Lpn{9000});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().map_pages_fetched.size(), 1u);
}

TEST_F(TranslatorTest, PageModeUsesPageEntriesOnly) {
  PopulateMixed();
  Translator tr = Make(L2pSearchStrategy::kBitmap, /*hybrid=*/false);
  auto r = tr.Translate(Lpn{123});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().gran, MapGranularity::kPage);
  EXPECT_EQ(r.value().ppn, Ppn{7000000 + 123});  // direct table ppn
  EXPECT_EQ(r.value().map_pages_fetched.size(), 1u);
}

TEST_F(TranslatorTest, PrefetchWindowFillsFollowingEntries) {
  PopulateMixed();
  Translator tr = Make(L2pSearchStrategy::kBitmap, /*hybrid=*/false,
                       /*prefetch=*/16);
  auto r = tr.Translate(Lpn{8192});
  ASSERT_TRUE(r.ok());
  // The next 16 lpns are now cached without extra fetches.
  for (std::uint64_t i = 1; i <= 16; ++i) {
    auto n = tr.Translate(Lpn{8192 + i});
    ASSERT_TRUE(n.ok());
    EXPECT_TRUE(n.value().cache_hit) << i;
  }
  EXPECT_EQ(tr.stats().map_fetches, 1u);
}

TEST_F(TranslatorTest, PrefetchStopsAtMapPageBoundary) {
  PopulateMixed();
  Translator tr = Make(L2pSearchStrategy::kBitmap, false, 1023);
  // Lpn 4095 is the last entry of map page 0: nothing after it can be
  // prefetched from the same page read.
  auto r = tr.Translate(Lpn{4095});
  ASSERT_TRUE(r.ok());
  auto n = tr.Translate(Lpn{4096});
  ASSERT_TRUE(n.ok());
  EXPECT_FALSE(n.value().cache_hit);
}

TEST_F(TranslatorTest, StatsAccumulate) {
  PopulateMixed();
  Translator tr = Make(L2pSearchStrategy::kBitmap);
  (void)tr.Translate(Lpn{1});
  (void)tr.Translate(Lpn{2});
  EXPECT_EQ(tr.stats().translations, 2u);
  EXPECT_EQ(tr.stats().cache_hits, 1u);  // second resolves via zone entry
  EXPECT_DOUBLE_EQ(tr.stats().MissRate(), 0.5);
}

TEST_F(TranslatorTest, BitmapSramScalesWithCapacity) {
  Translator tr = Make(L2pSearchStrategy::kBitmap);
  // 2 bits x 16384 lpns = 4096 bytes.
  EXPECT_EQ(tr.StrategySramBytes(), 4096u);
  Translator tm = Make(L2pSearchStrategy::kMultiple);
  EXPECT_EQ(tm.StrategySramBytes(), 0u);
}

}  // namespace
}  // namespace conzone
