// Property-based tests: randomized operation sequences driven against
// ConZone with a simple in-test oracle. These are the tests that caught
// (and guard) the cross-module invariants:
//
//   P1  Every readable LPA returns the token of its last write — across
//       buffer hits, SLC staging, fold-back, the alignment patch, GC
//       migration and zone resets.
//   P2  The mapping is a bijection: no two mapped LPAs share a PPN, and
//       every mapped slot's OOB back-pointer names its LPA.
//   P3  Map bits never lie: any entry stamped chunk/zone-aggregated is
//       resolvable through the reserved layout to exactly its table PPN.
//   P4  Accounting: flash programs >= host bytes (WAF >= 1 once flushed),
//       valid-slot counts match the mapping.
//   P5  Time is monotone: every completion is >= its submission.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "core/device.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

ConZoneConfig PropertyConfig(L2pSearchStrategy strategy) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 16;  // 12 zones: small enough to churn
  cfg.geometry.slc_blocks_per_chip = 4;
  cfg.translator.strategy = strategy;
  return cfg;
}

struct PropertyCase {
  std::uint64_t seed;
  L2pSearchStrategy strategy;
};

class DevicePropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(DevicePropertyTest, RandomOpSequenceKeepsAllInvariants) {
  const PropertyCase param = GetParam();
  auto devr = ConZoneDevice::Create(PropertyConfig(param.strategy));
  ASSERT_TRUE(devr.ok());
  ConZoneDevice& dev = **devr;
  const std::uint64_t zone_bytes = dev.info().zone_size_bytes;
  const std::uint64_t num_zones = dev.info().num_zones;
  const std::uint64_t slot = 4096;

  Rng rng(param.seed);
  // Oracle: expected token per written LPA, plus each zone's wp.
  std::map<std::uint64_t, std::uint64_t> oracle;
  std::vector<std::uint64_t> wp(num_zones, 0);
  std::uint64_t next_token = 1;
  SimTime t;

  for (int step = 0; step < 600; ++step) {
    const std::uint64_t z = rng.NextBelow(num_zones);
    const int op = static_cast<int>(rng.NextBelow(10));
    if (op < 6) {
      // Append 4..512 KiB at the zone's write pointer.
      if (wp[z] >= zone_bytes) continue;
      std::uint64_t len = (1 + rng.NextBelow(128)) * slot;
      len = std::min(len, zone_bytes - wp[z]);
      std::vector<std::uint64_t> tokens(len / slot);
      for (auto& tok : tokens) tok = next_token++;
      const std::uint64_t off = z * zone_bytes + wp[z];
      auto r = TestWrite(dev, off, len, t, tokens);
      ASSERT_TRUE(r.ok()) << "step " << step << ": " << r.status().ToString();
      ASSERT_GE(r.value(), t);  // P5
      t = r.value();
      for (std::uint64_t i = 0; i < tokens.size(); ++i) {
        oracle[off / slot + i] = tokens[i];
      }
      wp[z] += len;
    } else if (op < 9) {
      // Read a random written extent of the zone.
      if (wp[z] == 0) continue;
      const std::uint64_t max_slots = wp[z] / slot;
      const std::uint64_t start = rng.NextBelow(max_slots);
      const std::uint64_t count = 1 + rng.NextBelow(std::min<std::uint64_t>(64, max_slots - start));
      std::vector<std::uint64_t> got;
      const std::uint64_t off = z * zone_bytes + start * slot;
      auto r = TestRead(dev, off, count * slot, t, &got);
      ASSERT_TRUE(r.ok()) << "step " << step << ": " << r.status().ToString();
      ASSERT_GE(r.value(), t);
      t = r.value();
      for (std::uint64_t i = 0; i < count; ++i) {
        ASSERT_EQ(got[i], oracle.at(off / slot + i))
            << "P1 violated at lpn " << off / slot + i << " step " << step;
      }
    } else {
      // Reset the zone.
      auto r = dev.ResetZone(ZoneId{z}, t);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      t = r.value();
      for (std::uint64_t i = 0; i < zone_bytes / slot; ++i) {
        oracle.erase(z * (zone_bytes / slot) + i);
      }
      wp[z] = 0;
    }
  }

  // P2 + P3: walk the mapping table.
  const MappingTable& table = dev.mapping();
  const FlashArray& array = dev.array();
  std::map<std::uint64_t, std::uint64_t> ppn_owner;
  std::uint64_t mapped = 0;
  for (std::uint64_t l = 0; l < table.geometry().num_lpns; ++l) {
    const MapEntry e = table.Get(Lpn{l});
    if (!e.mapped()) continue;
    ++mapped;
    ASSERT_TRUE(ppn_owner.emplace(e.ppn.value(), l).second)
        << "P2: ppn " << e.ppn.value() << " shared by lpns " << ppn_owner[e.ppn.value()]
        << " and " << l;
    const SlotRead r = array.ReadSlot(e.ppn);
    ASSERT_EQ(r.state, SlotState::kValid) << "P2: mapped slot not valid, lpn " << l;
    ASSERT_EQ(r.lpn.value(), l) << "P2: OOB back-pointer mismatch";
  }
  // Every durable oracle entry is mapped (buffered tails may not be yet).
  ASSERT_LE(mapped, oracle.size());

  // P4: accounting.
  if (dev.stats().host_bytes_written > 0 &&
      dev.media_counters().TotalSlotsProgrammed() > 0) {
    const double durable_fraction =
        static_cast<double>(mapped * slot) /
        static_cast<double>(dev.stats().host_bytes_written);
    EXPECT_GE(dev.Stats().WriteAmplification(), durable_fraction * 0.999);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DevicePropertyTest,
    ::testing::Values(PropertyCase{1, L2pSearchStrategy::kBitmap},
                      PropertyCase{2, L2pSearchStrategy::kBitmap},
                      PropertyCase{3, L2pSearchStrategy::kMultiple},
                      PropertyCase{4, L2pSearchStrategy::kMultiple},
                      PropertyCase{5, L2pSearchStrategy::kPinned},
                      PropertyCase{6, L2pSearchStrategy::kPinned},
                      PropertyCase{7, L2pSearchStrategy::kBitmap},
                      PropertyCase{8, L2pSearchStrategy::kMultiple}),
    [](const auto& info) {
      return std::string(L2pSearchStrategyName(info.param.strategy)) + "_seed" +
             std::to_string(info.param.seed);
    });

/// P3 in isolation: stamped aggregates must resolve through the layout.
TEST(AggregationPropertyTest, AggregatedEntriesResolveToTablePpns) {
  auto devr = ConZoneDevice::Create(PropertyConfig(L2pSearchStrategy::kBitmap));
  ASSERT_TRUE(devr.ok());
  ConZoneDevice& dev = **devr;
  const std::uint64_t zone_bytes = dev.info().zone_size_bytes;
  SimTime t;
  // Complete two zones (one clean, one via conflicting traffic).
  for (std::uint64_t off = 0; off < zone_bytes; off += 512 * kKiB) {
    t = TestWrite(dev, off, 512 * kKiB, t).value();
  }
  std::uint64_t pos = 0, off3 = 0;
  while (pos < zone_bytes) {
    const std::uint64_t len = std::min<std::uint64_t>(48 * kKiB, zone_bytes - pos);
    t = TestWrite(dev, 2 * zone_bytes + pos, len, t).value();
    pos += len;
    if (off3 < 48 * kKiB * 20) {
      t = TestWrite(dev, 4 * zone_bytes + off3, 48 * kKiB, t).value();  // conflicting zone
      off3 += 48 * kKiB;
    }
  }
  EXPECT_EQ(dev.stats().aggregates_zone, 2u);

  const MappingTable& table = dev.mapping();
  const std::uint64_t lpns_per_zone = zone_bytes / 4096;
  for (std::uint64_t z : {0ull, 2ull}) {
    for (std::uint64_t i = 0; i < lpns_per_zone; i += 37) {
      const Lpn lpn{z * lpns_per_zone + i};
      const MapEntry e = table.Get(lpn);
      ASSERT_TRUE(e.mapped());
      ASSERT_EQ(e.gran, MapGranularity::kZone) << lpn.value();
    }
  }
}

}  // namespace
}  // namespace conzone
