// Tests for the conventional-zone extension (§III-E): in-place updates
// for the host's metadata region, coexisting with sequential zones on
// one device.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "core/device.hpp"
#include "workload/fio.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

ConZoneConfig ConvConfig(std::uint32_t conventional = 2) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 24;  // 4 SLC + 20 normal
  cfg.geometry.slc_blocks_per_chip = 4;
  cfg.num_conventional_zones = conventional;
  return cfg;
}

std::vector<std::uint64_t> Tokens(std::uint64_t first, std::uint64_t n,
                                  std::uint64_t salt) {
  std::vector<std::uint64_t> t(n);
  for (std::uint64_t i = 0; i < n; ++i) t[i] = (first + i) * 31337 + salt;
  return t;
}

class ConventionalZoneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dev = ConZoneDevice::Create(ConvConfig());
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    dev_ = std::move(dev).value();
    zb_ = dev_->info().zone_size_bytes;
  }

  void WriteAt(std::uint64_t off, std::uint64_t len, SimTime& t, std::uint64_t salt) {
    auto r = TestWrite(*dev_, off, len, t, Tokens(off / 4096, len / 4096, salt));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    t = r.value();
  }

  void VerifyRead(std::uint64_t off, std::uint64_t len, SimTime& t,
                  std::uint64_t salt) {
    std::vector<std::uint64_t> got;
    auto r = TestRead(*dev_, off, len, t, &got);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    t = r.value();
    EXPECT_EQ(got, Tokens(off / 4096, len / 4096, salt));
  }

  std::unique_ptr<ConZoneDevice> dev_;
  std::uint64_t zb_ = 0;
};

TEST_F(ConventionalZoneTest, PoolReservationShrinksSequentialZones) {
  // 20 normal superblocks; 2 conventional zones auto-size to
  // ceil(32 MiB / 15.75 MiB) + 2 = 5 superblocks -> 15 sequential zones.
  EXPECT_EQ(dev_->num_conventional_zones(), 2u);
  EXPECT_EQ(dev_->layout().num_zones(), 15u);
  EXPECT_EQ(dev_->info().num_zones, 17u);
}

TEST_F(ConventionalZoneTest, InPlaceUpdatesAllowed) {
  SimTime t;
  WriteAt(64 * kKiB, 16 * kKiB, t, 1);   // arbitrary offset: no write pointer
  VerifyRead(64 * kKiB, 16 * kKiB, t, 1);
  WriteAt(64 * kKiB, 16 * kKiB, t, 2);   // overwrite in place
  auto f = dev_->Flush(t);
  ASSERT_TRUE(f.ok());
  t = f.value();
  VerifyRead(64 * kKiB, 16 * kKiB, t, 2);
  EXPECT_GT(dev_->stats().conventional_writes, 0u);
  EXPECT_GT(dev_->stats().conventional_overwrites, 0u);
}

TEST_F(ConventionalZoneTest, SequentialZonesKeepTheirRules) {
  SimTime t;
  const std::uint64_t seq0 = 2 * zb_;  // first sequential zone
  // Sequential zone still demands write-pointer order...
  EXPECT_FALSE(TestWrite(*dev_, seq0 + 8192, 4096, t).ok());
  ASSERT_TRUE(TestWrite(*dev_, seq0, 4096, t).ok());
  // ...while the conventional zone does not.
  EXPECT_TRUE(TestWrite(*dev_, 1 * zb_ + 512 * kKiB, 4096, t).ok());
}

TEST_F(ConventionalZoneTest, MixedTrafficKeepsIntegrity) {
  SimTime t;
  // Interleave metadata-style 4-16 KiB in-place updates with a
  // sequential zone fill, then verify both.
  std::map<std::uint64_t, std::uint64_t> meta;  // offset -> salt
  Rng rng(5);
  std::uint64_t seq_pos = 0;
  const std::uint64_t seq0 = 2 * zb_;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t off = rng.NextBelow(2 * zb_ / 4096) * 4096;
    WriteAt(off, 4096, t, static_cast<std::uint64_t>(i));
    meta[off] = static_cast<std::uint64_t>(i);
    if (seq_pos < zb_) {
      const std::uint64_t len = std::min<std::uint64_t>(96 * kKiB, zb_ - seq_pos);
      WriteAt(seq0 + seq_pos, len, t, 777);
      seq_pos += len;
    }
  }
  auto f = dev_->Flush(t);
  ASSERT_TRUE(f.ok());
  t = f.value();
  for (const auto& [off, salt] : meta) VerifyRead(off, 4096, t, salt);
  VerifyRead(seq0, zb_, t, 777);
  EXPECT_EQ(dev_->stats().aggregates_zone, 1u);  // sequential zone aggregated
}

TEST_F(ConventionalZoneTest, ConventionalDataNeverAggregates) {
  SimTime t;
  for (std::uint64_t off = 0; off < zb_; off += 512 * kKiB) {
    WriteAt(off, 512 * kKiB, t, 9);
  }
  auto f = dev_->Flush(t);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(dev_->mapping().Get(Lpn{0}).gran, MapGranularity::kPage);
  EXPECT_EQ(dev_->stats().aggregates_zone, 0u);
}

TEST_F(ConventionalZoneTest, GcReclaimsThePoolUnderChurn) {
  SimTime t;
  // Rewrite the two conventional zones' space repeatedly at random: the
  // 5-superblock pool must be collected multiple times.
  Rng rng(11);
  for (int i = 0; i < 1200; ++i) {
    const std::uint64_t off = rng.NextBelow(2 * zb_ / (64 * kKiB)) * 64 * kKiB;
    WriteAt(off, 64 * kKiB, t, static_cast<std::uint64_t>(i));
  }
  EXPECT_GT(dev_->stats().conventional_gc_runs, 0u);
  EXPECT_GT(dev_->stats().conventional_gc_migrated, 0u);
}

TEST_F(ConventionalZoneTest, ResetDropsConventionalZone) {
  SimTime t;
  WriteAt(0, 256 * kKiB, t, 3);
  auto f = dev_->Flush(t);
  ASSERT_TRUE(f.ok());
  t = f.value();
  auto r = dev_->ResetZone(ZoneId{0}, t);
  ASSERT_TRUE(r.ok());
  t = r.value();
  EXPECT_FALSE(TestRead(*dev_, 0, 4096, t).ok());
  WriteAt(0, 4096, t, 4);  // immediately rewritable
  VerifyRead(0, 4096, t, 4);
}

TEST_F(ConventionalZoneTest, FinishRejectedOnConventional) {
  SimTime t;
  EXPECT_EQ(dev_->FinishZone(ZoneId{0}, t).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ConventionalZoneConfigTest, UndersizedPoolRejected) {
  ConZoneConfig cfg = ConvConfig(2);
  cfg.conventional_superblocks = 2;  // < capacity + headroom
  EXPECT_FALSE(ConZoneDevice::Create(cfg).ok());
}

TEST(ConventionalZoneConfigTest, FioRunnerDrivesMetadataWorkload) {
  auto dev = ConZoneDevice::Create(ConvConfig(1));
  ASSERT_TRUE(dev.ok());
  FioRunner fio(**dev);
  // Random in-place 4 KiB writes confined to the conventional zone — the
  // F2FS-metadata pattern the paper motivates.
  JobSpec w;
  w.direction = IoDirection::kWrite;
  w.pattern = IoPattern::kRandom;
  w.block_size = 4096;
  w.zone_list = {0};
  w.io_count = 500;
  auto r = fio.Run({w});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*dev)->stats().conventional_writes, 500u);
}

}  // namespace
}  // namespace conzone
