// Unit tests for the discrete-event engine: busy-until resource
// timelines and the event queue. The EventQueue tests are parameterized
// over both backends (binary heap and timing wheel): the scheduler
// contract — time order, FIFO among equal timestamps, clamp semantics —
// is backend-independent, and the randomized cross-check at the bottom
// proves the two execute bit-identical event orders.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"

namespace conzone {
namespace {

TEST(ResourceTimelineTest, IdleResourceStartsImmediately) {
  ResourceTimeline r;
  const auto res = r.Reserve(SimTime::FromNanos(100), SimDuration::Nanos(50));
  EXPECT_EQ(res.start.ns(), 100u);
  EXPECT_EQ(res.end.ns(), 150u);
  EXPECT_EQ(r.busy_until().ns(), 150u);
}

TEST(ResourceTimelineTest, BusyResourceQueues) {
  ResourceTimeline r;
  r.Reserve(SimTime::Zero(), SimDuration::Nanos(100));
  const auto second = r.Reserve(SimTime::FromNanos(10), SimDuration::Nanos(20));
  EXPECT_EQ(second.start.ns(), 100u);  // waits for the first
  EXPECT_EQ(second.end.ns(), 120u);
}

TEST(ResourceTimelineTest, GapLeavesResourceIdle) {
  ResourceTimeline r;
  r.Reserve(SimTime::Zero(), SimDuration::Nanos(10));
  const auto late = r.Reserve(SimTime::FromNanos(1000), SimDuration::Nanos(10));
  EXPECT_EQ(late.start.ns(), 1000u);
  EXPECT_EQ(r.busy_time().ns(), 20u);  // utilization counts work only
  EXPECT_EQ(r.reservations(), 2u);
}

TEST(ResourceTimelineTest, ResetClearsState) {
  ResourceTimeline r;
  r.Reserve(SimTime::Zero(), SimDuration::Nanos(10));
  r.Reset();
  EXPECT_EQ(r.busy_until().ns(), 0u);
  EXPECT_EQ(r.busy_time().ns(), 0u);
}

class EventQueueBackendTest
    : public ::testing::TestWithParam<EventQueue::Backend> {};

TEST_P(EventQueueBackendTest, RunsInTimeOrder) {
  EventQueue q(GetParam());
  std::vector<int> order;
  q.Schedule(SimTime::FromNanos(300), [&](SimTime) { order.push_back(3); });
  q.Schedule(SimTime::FromNanos(100), [&](SimTime) { order.push_back(1); });
  q.Schedule(SimTime::FromNanos(200), [&](SimTime) { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now().ns(), 300u);
}

TEST_P(EventQueueBackendTest, EqualTimestampsRunFifo) {
  EventQueue q(GetParam());
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(SimTime::FromNanos(10), [&, i](SimTime) { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_P(EventQueueBackendTest, EventsMayScheduleMoreEvents) {
  EventQueue q(GetParam());
  int count = 0;
  std::function<void(SimTime)> chain = [&](SimTime t) {
    if (++count < 10) q.Schedule(t + SimDuration::Nanos(5), chain);
  };
  q.Schedule(SimTime::Zero(), chain);
  q.RunAll();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(q.now().ns(), 45u);
}

TEST_P(EventQueueBackendTest, RunUntilStopsAtDeadline) {
  EventQueue q(GetParam());
  int ran = 0;
  q.Schedule(SimTime::FromNanos(10), [&](SimTime) { ran++; });
  q.Schedule(SimTime::FromNanos(20), [&](SimTime) { ran++; });
  q.Schedule(SimTime::FromNanos(30), [&](SimTime) { ran++; });
  q.RunUntil(SimTime::FromNanos(20));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST_P(EventQueueBackendTest, RunUntilExactlyAtEventTimestampRunsIt) {
  // Deadline == event time is inclusive: the event at the deadline runs,
  // the next one (1 ns later) does not.
  EventQueue q(GetParam());
  std::vector<std::uint64_t> ran;
  q.Schedule(SimTime::FromNanos(100), [&](SimTime t) { ran.push_back(t.ns()); });
  q.Schedule(SimTime::FromNanos(100), [&](SimTime t) { ran.push_back(t.ns()); });
  q.Schedule(SimTime::FromNanos(101), [&](SimTime t) { ran.push_back(t.ns()); });
  q.RunUntil(SimTime::FromNanos(100));
  EXPECT_EQ(ran, (std::vector<std::uint64_t>{100, 100}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.now().ns(), 100u);
  q.RunUntil(SimTime::FromNanos(101));
  EXPECT_EQ(ran, (std::vector<std::uint64_t>{100, 100, 101}));
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueBackendTest, ScheduleAfterRunUntilPeekedPastDeadline) {
  // RunUntil must not "use up" the timeline: after it stops at a deadline
  // short of the next event, scheduling between the deadline and that
  // event must still run in correct order. (Under the wheel backend this
  // exercises the cursor-resync path: the peek advanced the wheel to the
  // far event's timestamp.)
  EventQueue q(GetParam());
  std::vector<int> order;
  q.Schedule(SimTime::FromNanos(1000), [&](SimTime) { order.push_back(2); });
  q.RunUntil(SimTime::FromNanos(100));  // peeks 1000, runs nothing
  EXPECT_EQ(q.now().ns(), 0u);
  q.Schedule(SimTime::FromNanos(500), [&](SimTime) { order.push_back(1); });
  q.Schedule(SimTime::FromNanos(1000), [&](SimTime) { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now().ns(), 1000u);
}

TEST_P(EventQueueBackendTest, RunNextOnEmptyReturnsFalse) {
  EventQueue q(GetParam());
  EXPECT_FALSE(q.RunNext());
}

TEST_P(EventQueueBackendTest, SchedulingIntoThePastClampsToNow) {
  // The documented precondition (`t` not earlier than now()) is enforced
  // by an explicit policy; the default clamps the event forward to now()
  // and counts the violation.
  EventQueue q(GetParam());
  ASSERT_EQ(q.past_policy(), EventQueue::PastPolicy::kClampToNow);
  std::vector<int> order;
  q.Schedule(SimTime::FromNanos(100), [&](SimTime) {
    order.push_back(1);
    // now() == 100; asking for t=40 must not run in the simulated past.
    q.Schedule(SimTime::FromNanos(40), [&](SimTime t) {
      order.push_back(2);
      EXPECT_EQ(t.ns(), 100u);  // clamped to now()
    });
  });
  q.Schedule(SimTime::FromNanos(100), [&](SimTime) { order.push_back(3); });
  q.RunAll();
  // The clamped event lands at now()=100 and runs FIFO *after* the event
  // already queued at 100.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(q.clamped_schedules(), 1u);
  EXPECT_EQ(q.now().ns(), 100u);
}

TEST_P(EventQueueBackendTest, ClampingNeverRewindsNow) {
  EventQueue q(GetParam());
  q.Schedule(SimTime::FromNanos(50), [&](SimTime) {
    q.Schedule(SimTime::FromNanos(10), [](SimTime) {});
  });
  q.RunAll();
  EXPECT_EQ(q.now().ns(), 50u);  // monotone despite the past request
  EXPECT_EQ(q.clamped_schedules(), 1u);
}

TEST_P(EventQueueBackendTest, CountsExecutedEvents) {
  EventQueue q(GetParam());
  for (int i = 0; i < 7; ++i) {
    q.Schedule(SimTime::FromNanos(static_cast<std::uint64_t>(i)), [](SimTime) {});
  }
  q.RunAll();
  EXPECT_EQ(q.executed(), 7u);
}

TEST_P(EventQueueBackendTest, SteadyStateChainRecyclesSlots) {
  // A long self-scheduling chain keeps exactly one event pending; the
  // slot pool must not grow with chain length (recycling, not leaking).
  EventQueue q(GetParam());
  int count = 0;
  std::function<void(SimTime)> chain = [&](SimTime t) {
    if (++count < 10000) q.Schedule(t + SimDuration::Nanos(1), chain);
  };
  q.Schedule(SimTime::Zero(), chain);
  q.RunAll();
  EXPECT_EQ(count, 10000);
  EXPECT_EQ(q.executed(), 10000u);
}

TEST_P(EventQueueBackendTest, OversizedCapturesStillRun) {
  // Callables beyond the inline buffer take the heap fallback but behave
  // identically.
  EventQueue q(GetParam());
  std::array<std::uint64_t, 16> big{};
  big[15] = 42;
  std::uint64_t got = 0;
  q.Schedule(SimTime::FromNanos(5), [big, &got](SimTime) { got = big[15]; });
  q.RunAll();
  EXPECT_EQ(got, 42u);
}

TEST_P(EventQueueBackendTest, FarFutureEventsBeyondWheelHorizon) {
  // Events farther out than the wheel's top-level horizon (2^32 ns) land
  // in the overflow heap; promotion back into the wheel must preserve
  // time order and equal-timestamp FIFO. Exercised across several
  // horizon windows, interleaved with near events.
  EventQueue q(GetParam());
  constexpr std::uint64_t kHorizon = 1ull << 32;
  std::vector<std::uint64_t> ran;
  std::vector<std::uint64_t> expect;
  // Two equal far timestamps (FIFO check), plus scattered window hops.
  const std::uint64_t far = 3 * kHorizon + 12345;
  q.Schedule(SimTime::FromNanos(far), [&](SimTime t) { ran.push_back(t.ns() + 0); });
  q.Schedule(SimTime::FromNanos(far), [&](SimTime t) { ran.push_back(t.ns() + 1); });
  q.Schedule(SimTime::FromNanos(7), [&](SimTime t) { ran.push_back(t.ns()); });
  q.Schedule(SimTime::FromNanos(kHorizon - 1), [&](SimTime t) { ran.push_back(t.ns()); });
  q.Schedule(SimTime::FromNanos(kHorizon + 1), [&](SimTime t) { ran.push_back(t.ns()); });
  q.Schedule(SimTime::FromNanos(10 * kHorizon), [&](SimTime t) {
    ran.push_back(t.ns());
    // A far event scheduling another far event (fresh overflow window).
    q.Schedule(t + SimDuration::Nanos(kHorizon + 5),
               [&](SimTime t2) { ran.push_back(t2.ns()); });
  });
  expect = {7, kHorizon - 1, kHorizon + 1, far + 0, far + 1,
            10 * kHorizon, 11 * kHorizon + 5};
  q.RunAll();
  EXPECT_EQ(ran, expect);
  EXPECT_EQ(q.executed(), 7u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, EventQueueBackendTest,
    ::testing::Values(EventQueue::Backend::kBinaryHeap,
                      EventQueue::Backend::kTimingWheel),
    [](const ::testing::TestParamInfo<EventQueue::Backend>& info) {
      return info.param == EventQueue::Backend::kBinaryHeap ? "BinaryHeap"
                                                            : "TimingWheel";
    });

TEST(EventQueueDefaultTest, DefaultBackendIsTimingWheel) {
  EventQueue q;
  EXPECT_EQ(q.backend(), EventQueue::Backend::kTimingWheel);
}

// --- Wheel-vs-heap property test -----------------------------------------
//
// Randomized schedules driven through both backends must execute the
// exact same (timestamp, id) sequence — including FIFO order among equal
// timestamps. The generator deliberately stresses every structural path
// of the wheel: dense equal-timestamp bursts, nested scheduling from
// inside callbacks, clamped past requests, overflow-horizon events and
// RunUntil peeks that force a cursor resync.

struct TraceEvent {
  std::uint64_t when;
  std::uint64_t id;
  bool operator==(const TraceEvent&) const = default;
};

std::vector<TraceEvent> RunRandomSchedule(EventQueue::Backend backend,
                                          std::uint64_t seed) {
  EventQueue q(backend);
  Rng rng(seed);
  std::vector<TraceEvent> trace;
  std::uint64_t next_id = 0;

  // Each executed event may reschedule children; cap total work.
  constexpr std::size_t kMaxEvents = 4000;
  auto schedule_one = [&](SimTime at) {
    const std::uint64_t id = next_id++;
    q.Schedule(at, [&, id](SimTime t) {
      trace.push_back(TraceEvent{t.ns(), id});
      if (trace.size() >= kMaxEvents) return;
      // 0-2 children at adversarial offsets.
      const std::uint64_t kids = rng.NextBelow(3);
      for (std::uint64_t k = 0; k < kids; ++k) {
        std::uint64_t off;
        switch (rng.NextBelow(6)) {
          case 0: off = 0; break;                        // same timestamp
          case 1: off = 1 + rng.NextBelow(4); break;     // level-0 near
          case 2: off = 1 + rng.NextBelow(1 << 16); break;
          case 3: off = 1 + rng.NextBelow(1 << 30); break;
          case 4: off = (1ull << 32) + rng.NextBelow(1ull << 33); break;
          default: off = 1 + rng.NextBelow(256); break;
        }
        const std::uint64_t id2 = next_id++;
        q.Schedule(t + SimDuration::Nanos(off), [&, id2](SimTime t2) {
          trace.push_back(TraceEvent{t2.ns(), id2});
        });
      }
      // Occasionally request the simulated past (clamped to now, FIFO).
      if (rng.NextBelow(8) == 0 && t.ns() > 0) {
        const std::uint64_t id3 = next_id++;
        q.Schedule(SimTime::FromNanos(rng.NextBelow(t.ns())), [&, id3](SimTime t3) {
          trace.push_back(TraceEvent{t3.ns(), id3});
        });
      }
    });
  };

  // Seed schedule: bursts of equal timestamps plus scattered times.
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t base = rng.NextBelow(1ull << 34);
    const std::uint64_t burst = 1 + rng.NextBelow(4);
    for (std::uint64_t b = 0; b < burst; ++b) {
      schedule_one(SimTime::FromNanos(base));
    }
  }
  // Alternate RunUntil (forces peeks / possible resyncs) with more
  // scheduling, then drain.
  for (int round = 0; round < 4; ++round) {
    q.RunUntil(SimTime::FromNanos((round + 1) * (1ull << 32)));
    schedule_one(SimTime::FromNanos(q.now().ns() + rng.NextBelow(1ull << 33)));
  }
  q.RunAll();
  return trace;
}

TEST(EventQueueCrossCheckTest, WheelMatchesHeapOnRandomizedSchedules) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto heap_trace =
        RunRandomSchedule(EventQueue::Backend::kBinaryHeap, seed);
    const auto wheel_trace =
        RunRandomSchedule(EventQueue::Backend::kTimingWheel, seed);
    ASSERT_EQ(heap_trace.size(), wheel_trace.size()) << "seed " << seed;
    for (std::size_t i = 0; i < heap_trace.size(); ++i) {
      ASSERT_EQ(heap_trace[i].when, wheel_trace[i].when)
          << "seed " << seed << " event " << i;
      ASSERT_EQ(heap_trace[i].id, wheel_trace[i].id)
          << "seed " << seed << " event " << i;
    }
    // Sanity: timestamps monotone (no event ran in the past).
    for (std::size_t i = 1; i < wheel_trace.size(); ++i) {
      ASSERT_GE(wheel_trace[i].when, wheel_trace[i - 1].when);
    }
  }
}

}  // namespace
}  // namespace conzone
