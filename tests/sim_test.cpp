// Unit tests for the discrete-event engine: busy-until resource
// timelines and the event queue.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/resource.hpp"

namespace conzone {
namespace {

TEST(ResourceTimelineTest, IdleResourceStartsImmediately) {
  ResourceTimeline r;
  const auto res = r.Reserve(SimTime::FromNanos(100), SimDuration::Nanos(50));
  EXPECT_EQ(res.start.ns(), 100u);
  EXPECT_EQ(res.end.ns(), 150u);
  EXPECT_EQ(r.busy_until().ns(), 150u);
}

TEST(ResourceTimelineTest, BusyResourceQueues) {
  ResourceTimeline r;
  r.Reserve(SimTime::Zero(), SimDuration::Nanos(100));
  const auto second = r.Reserve(SimTime::FromNanos(10), SimDuration::Nanos(20));
  EXPECT_EQ(second.start.ns(), 100u);  // waits for the first
  EXPECT_EQ(second.end.ns(), 120u);
}

TEST(ResourceTimelineTest, GapLeavesResourceIdle) {
  ResourceTimeline r;
  r.Reserve(SimTime::Zero(), SimDuration::Nanos(10));
  const auto late = r.Reserve(SimTime::FromNanos(1000), SimDuration::Nanos(10));
  EXPECT_EQ(late.start.ns(), 1000u);
  EXPECT_EQ(r.busy_time().ns(), 20u);  // utilization counts work only
  EXPECT_EQ(r.reservations(), 2u);
}

TEST(ResourceTimelineTest, ResetClearsState) {
  ResourceTimeline r;
  r.Reserve(SimTime::Zero(), SimDuration::Nanos(10));
  r.Reset();
  EXPECT_EQ(r.busy_until().ns(), 0u);
  EXPECT_EQ(r.busy_time().ns(), 0u);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::FromNanos(300), [&](SimTime) { order.push_back(3); });
  q.Schedule(SimTime::FromNanos(100), [&](SimTime) { order.push_back(1); });
  q.Schedule(SimTime::FromNanos(200), [&](SimTime) { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now().ns(), 300u);
}

TEST(EventQueueTest, EqualTimestampsRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(SimTime::FromNanos(10), [&, i](SimTime) { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void(SimTime)> chain = [&](SimTime t) {
    if (++count < 10) q.Schedule(t + SimDuration::Nanos(5), chain);
  };
  q.Schedule(SimTime::Zero(), chain);
  q.RunAll();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(q.now().ns(), 45u);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int ran = 0;
  q.Schedule(SimTime::FromNanos(10), [&](SimTime) { ran++; });
  q.Schedule(SimTime::FromNanos(20), [&](SimTime) { ran++; });
  q.Schedule(SimTime::FromNanos(30), [&](SimTime) { ran++; });
  q.RunUntil(SimTime::FromNanos(20));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, RunNextOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.RunNext());
}

TEST(EventQueueTest, SchedulingIntoThePastClampsToNow) {
  // The documented precondition (`t` not earlier than now()) is enforced
  // by an explicit policy; the default clamps the event forward to now()
  // and counts the violation.
  EventQueue q;
  ASSERT_EQ(q.past_policy(), EventQueue::PastPolicy::kClampToNow);
  std::vector<int> order;
  q.Schedule(SimTime::FromNanos(100), [&](SimTime) {
    order.push_back(1);
    // now() == 100; asking for t=40 must not run in the simulated past.
    q.Schedule(SimTime::FromNanos(40), [&](SimTime t) {
      order.push_back(2);
      EXPECT_EQ(t.ns(), 100u);  // clamped to now()
    });
  });
  q.Schedule(SimTime::FromNanos(100), [&](SimTime) { order.push_back(3); });
  q.RunAll();
  // The clamped event lands at now()=100 and runs FIFO *after* the event
  // already queued at 100.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(q.clamped_schedules(), 1u);
  EXPECT_EQ(q.now().ns(), 100u);
}

TEST(EventQueueTest, ClampingNeverRewindsNow) {
  EventQueue q;
  q.Schedule(SimTime::FromNanos(50), [&](SimTime) {
    q.Schedule(SimTime::FromNanos(10), [](SimTime) {});
  });
  q.RunAll();
  EXPECT_EQ(q.now().ns(), 50u);  // monotone despite the past request
  EXPECT_EQ(q.clamped_schedules(), 1u);
}

TEST(EventQueueTest, CountsExecutedEvents) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) {
    q.Schedule(SimTime::FromNanos(static_cast<std::uint64_t>(i)), [](SimTime) {});
  }
  q.RunAll();
  EXPECT_EQ(q.executed(), 7u);
}

TEST(EventQueueTest, SteadyStateChainRecyclesSlots) {
  // A long self-scheduling chain keeps exactly one event pending; the
  // slot pool must not grow with chain length (recycling, not leaking).
  EventQueue q;
  int count = 0;
  std::function<void(SimTime)> chain = [&](SimTime t) {
    if (++count < 10000) q.Schedule(t + SimDuration::Nanos(1), chain);
  };
  q.Schedule(SimTime::Zero(), chain);
  q.RunAll();
  EXPECT_EQ(count, 10000);
  EXPECT_EQ(q.executed(), 10000u);
}

TEST(EventQueueTest, OversizedCapturesStillRun) {
  // Callables beyond the inline buffer take the heap fallback but behave
  // identically.
  EventQueue q;
  std::array<std::uint64_t, 16> big{};
  big[15] = 42;
  std::uint64_t got = 0;
  q.Schedule(SimTime::FromNanos(5), [big, &got](SimTime) { got = big[15]; });
  q.RunAll();
  EXPECT_EQ(got, 42u);
}

}  // namespace
}  // namespace conzone
