// Fleet-scale crash/recovery soak tests (DESIGN.md §13).
//
//   * Thread-count invariance: the merged fleet result — every per-shard
//     counter, fingerprint, and histogram — is bit-identical whether the
//     shards run on 1, 2, 4 or 8 worker threads.
//   * Shard-0 identity: shard 0 of a fleet soak reproduces, bit for bit,
//     a hand-rolled single-device CrashHarness soak of
//     ConfigForShard(plan, 0) under WorkloadForShard(plan, 0).
//   * Every scheduled cut remounts and passes the crash-consistency
//     checker (remounts == checker_passes == cuts).
//   * The wear ramp is monotone and actually escalates fault pressure.
//   * A shard that degrades to read-only is a reported survivor, never a
//     run failure.
//   * Opt-in long soak (CONZONE_FLEET_SOAK=1): 8 shards x 100+ cuts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "conzone/conzone.hpp"

namespace conzone {
namespace {

ConZoneConfig SmallConfig() {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 20;  // 4 SLC + 16 normal => small device
  cfg.geometry.slc_blocks_per_chip = 4;
  cfg.fault.read_only_spare_floor_blocks = 0;  // soak to the bitter end
  return cfg;
}

FleetSoakPlan SmallPlan(std::uint32_t shards, std::uint32_t cuts) {
  FleetSoakPlan plan;
  plan.config = SmallConfig();
  plan.shards = shards;
  plan.cuts_per_shard = cuts;
  plan.cut_interval_ns = 2'000'000;  // 2 ms mean: several slices per gap
  plan.ops_per_slice = 8;
  plan.wear_ramp_endurance = 4;  // small blocks cycle fast; ramp engages
  plan.wear_ramp_slope = 0.05;
  plan.checkpoint_interval_entries = 256;
  plan.checkpoint_stagger_levels = 3;
  plan.master_seed = 2026;
  return plan;
}

// Every simulated quantity that could expose a determinism leak, as one
// comparable string. Timestamps in exact nanoseconds — "bit-identical"
// means bit-identical.
std::string Fingerprint(const FleetShardResult& s) {
  std::ostringstream os;
  os << "shard=" << s.shard_id << " ops=" << s.ops << " cuts=" << s.cuts
     << " remounts=" << s.remounts << " checks=" << s.checker_passes
     << " ro=" << s.read_only << " fp=" << s.fingerprint
     << " end=" << s.end_time.ns() << " rec={" << s.recovery.Summary() << "}"
     << " remount_hist={" << s.recovery.remount_hist.Summary() << "}"
     << " ckpt_age_hist={" << s.recovery.checkpoint_age_hist.Summary() << "}"
     << " rel={" << s.reliability.Summary() << "}"
     << " red={" << s.redundancy.Summary() << "}"
     << " waf=" << s.device.WriteAmplification()
     << " flash=" << s.device.flash_bytes_written
     << " resets=" << s.device.zone_resets;
  return os.str();
}

std::string Fingerprint(const FleetSoakResult& r) {
  std::ostringstream os;
  for (const FleetShardResult& s : r.shards) os << Fingerprint(s) << "\n";
  os << "fleet fp=" << r.fleet_fingerprint << " ops=" << r.total_ops
     << " cuts=" << r.total_cuts << " remounts=" << r.total_remounts
     << " ro_shards=" << r.read_only_shards << " end=" << r.end_time.ns()
     << " rec={" << r.recovery.Summary() << "}"
     << " rel={" << r.reliability.Summary() << "}"
     << " red={" << r.redundancy.Summary() << "}"
     << " flash=" << r.device.flash_bytes_written;
  return os.str();
}

TEST(FleetSoakTest, MergedStatsIdenticalForAnyThreadCount) {
  std::string reference;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    FleetSoakPlan plan = SmallPlan(/*shards=*/4, /*cuts=*/5);
    plan.threads = threads;
    auto res = FleetSoakRunner(plan).Run();
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    const std::string fp = Fingerprint(res.value());
    if (reference.empty()) {
      reference = fp;
    } else {
      EXPECT_EQ(fp, reference) << "threads=" << threads;
    }
  }
}

TEST(FleetSoakTest, RunsOnACallerProvidedExecutor) {
  FleetSoakPlan plan = SmallPlan(/*shards=*/3, /*cuts=*/3);
  plan.threads = 1;
  auto serial = FleetSoakRunner(plan).Run();
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  WorkStealingExecutor exec(3);
  plan.executor = &exec;
  auto shared = FleetSoakRunner(plan).Run();
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  EXPECT_EQ(Fingerprint(shared.value()), Fingerprint(serial.value()));
}

// Shard 0 is the identity derivation: replaying ConfigForShard(plan, 0)
// and WorkloadForShard(plan, 0) through a plain single-device harness
// loop — the examples/crash_study shape — reproduces it bit for bit.
TEST(FleetSoakTest, ShardZeroMatchesSingleDeviceSoak) {
  const FleetSoakPlan plan = SmallPlan(/*shards=*/3, /*cuts=*/4);
  auto fleet = FleetSoakRunner(plan).Run();
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ASSERT_EQ(fleet.value().shards.size(), 3u);

  const ConZoneConfig cfg = FleetSoakRunner::ConfigForShard(plan, 0);
  // Identity: shard 0 keeps the template's fault seed and workload seed.
  EXPECT_EQ(cfg.fault.seed, plan.config.fault.seed);
  EXPECT_EQ(FleetSoakRunner::WorkloadForShard(plan, 0).seed,
            plan.workload.seed);

  CrashHarness h(cfg, FleetSoakRunner::WorkloadForShard(plan, 0));
  ASSERT_TRUE(h.Init().ok());
  FaultConfig sc;
  sc.seed = cfg.fault.seed;
  sc.power_cut_mean_interval_ns = plan.cut_interval_ns;
  FaultModel schedule(sc);

  FleetShardResult manual;
  SimTime next_cut = schedule.NextCutAfter(h.now());
  while (manual.cuts < plan.cuts_per_shard) {
    if (Status st = h.RunOps(plan.ops_per_slice); !st.ok()) {
      ASSERT_TRUE(h.device().read_only()) << st.ToString();
      break;
    }
    manual.ops += plan.ops_per_slice;
    if (h.now() < next_cut) continue;
    ASSERT_TRUE(h.CutAt(Later(next_cut, h.last_submit())).ok());
    ++manual.cuts;
    ASSERT_TRUE(h.RecoverAndVerify().ok());
    ++manual.remounts;
    ++manual.checker_passes;
    next_cut = schedule.NextCutAfter(h.now());
  }
  manual.read_only = h.device().read_only();
  manual.fingerprint = h.fingerprint();
  manual.end_time = h.now();
  manual.recovery = h.device().Recovery();
  manual.reliability = h.device().Reliability();
  manual.device = h.device().Stats();

  EXPECT_EQ(Fingerprint(fleet.value().shards[0]), Fingerprint(manual));
}

TEST(FleetSoakTest, EveryRemountPassesTheChecker) {
  auto res = FleetSoakRunner(SmallPlan(/*shards=*/4, /*cuts=*/5)).Run();
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const FleetSoakResult& r = res.value();
  std::uint64_t cuts = 0, remounts = 0;
  for (const FleetShardResult& s : r.shards) {
    // Every cut the shard took was remounted and verified before its
    // workload resumed; a shard that is not a read-only survivor took
    // its full quota.
    EXPECT_EQ(s.remounts, s.cuts) << "shard " << s.shard_id;
    EXPECT_EQ(s.checker_passes, s.remounts) << "shard " << s.shard_id;
    if (!s.read_only) EXPECT_EQ(s.cuts, 5u) << "shard " << s.shard_id;
    // The device-side counters agree with the harness-side ones.
    EXPECT_EQ(s.recovery.power_cuts, s.cuts) << "shard " << s.shard_id;
    EXPECT_EQ(s.recovery.recoveries, s.remounts) << "shard " << s.shard_id;
    EXPECT_GT(s.recovery.remount_hist.count(), 0u) << "shard " << s.shard_id;
    cuts += s.cuts;
    remounts += s.remounts;
  }
  EXPECT_EQ(r.total_cuts, cuts);
  EXPECT_EQ(r.total_remounts, remounts);
  EXPECT_EQ(r.recovery.power_cuts, cuts);
  EXPECT_EQ(r.recovery.recoveries, remounts);
  // The staggered checkpoint cadence actually wrote images somewhere in
  // the fleet, and the consumer fault rates actually fired.
  EXPECT_GT(r.recovery.checkpoints_written, 0u);
  EXPECT_GT(r.reliability.TotalFaults(), 0u);
}

// Regression: a 1-shard checkpointed soak whose 47th scheduled cut lands
// exactly on the last submission instant while a fold re-drive is in
// flight. SLC GC used to run nested inside the re-drive and stamp the
// fold's source invalidates under its own, earlier-closing window — the
// cut made those invalidates durable while the superseding program was
// torn, losing 20 acknowledged-durable slots of zone 2. Mark-scoped
// journal stamping plus reclaiming SLC headroom before the fold's
// read-back keeps every remount on this stream consistent.
TEST(FleetSoakTest, FoldRedriveUnderGcPressureKeepsDurableData) {
  FleetSoakPlan plan = SmallPlan(/*shards=*/1, /*cuts=*/47);
  plan.wear_ramp_endurance = 0;
  plan.consumer_faults = false;  // repeated cuts alone skew the reserved blocks
  auto res = FleetSoakRunner(plan).Run();
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const FleetShardResult& s = res.value().shards[0];
  EXPECT_EQ(s.cuts, 47u);
  EXPECT_EQ(s.remounts, 47u);
  EXPECT_EQ(s.checker_passes, 47u);
}

TEST(FleetSoakTest, ConfigForShardAppliesFleetPolicy) {
  const FleetSoakPlan plan = SmallPlan(/*shards=*/6, /*cuts=*/1);
  const FaultConfig consumer = FaultConfig::ConsumerDefaults();
  for (std::uint32_t i = 0; i < plan.shards; ++i) {
    const ConZoneConfig cfg = FleetSoakRunner::ConfigForShard(plan, i);
    // ConsumerDefaults rates, template floor, wear ramp, journaling on.
    EXPECT_EQ(cfg.fault.slc.program_fail, consumer.slc.program_fail);
    EXPECT_EQ(cfg.fault.normal.read_retry, consumer.normal.read_retry);
    EXPECT_EQ(cfg.fault.read_only_spare_floor_blocks, 0u);
    EXPECT_EQ(cfg.fault.rated_endurance, plan.wear_ramp_endurance);
    EXPECT_EQ(cfg.fault.wear_slope, plan.wear_ramp_slope);
    EXPECT_TRUE(cfg.fault.power_loss);
    EXPECT_TRUE(cfg.l2p_log.enabled);
    EXPECT_TRUE(cfg.checkpoint.enabled);
    // Staggered cadence: base << (i % levels).
    EXPECT_EQ(cfg.checkpoint.interval_entries,
              plan.checkpoint_interval_entries
                  << (i % plan.checkpoint_stagger_levels));
    EXPECT_TRUE(cfg.Validate().ok());
  }
  // Seed derivation: identity at shard 0, decorrelated beyond.
  EXPECT_EQ(FleetSoakRunner::ConfigForShard(plan, 0).fault.seed,
            plan.config.fault.seed);
  EXPECT_NE(FleetSoakRunner::ConfigForShard(plan, 1).fault.seed,
            plan.config.fault.seed);
  EXPECT_NE(FleetSoakRunner::ConfigForShard(plan, 1).fault.seed,
            FleetSoakRunner::ConfigForShard(plan, 2).fault.seed);
  EXPECT_NE(FleetSoakRunner::WorkloadForShard(plan, 1).seed,
            FleetSoakRunner::WorkloadForShard(plan, 2).seed);
}

TEST(WearRampTest, MultiplierIsMonotoneAndPure) {
  FaultConfig fc;
  fc.rated_endurance = 16;
  fc.wear_slope = 0.02;
  FaultModel model(fc);
  // Flat at 1.0 up to the rated endurance...
  for (std::uint32_t e = 0; e <= 16; ++e) {
    EXPECT_DOUBLE_EQ(model.wear_multiplier(e), 1.0) << "erases=" << e;
  }
  // ...then strictly increasing, linear in the excess.
  double prev = model.wear_multiplier(16);
  for (std::uint32_t e = 17; e <= 64; ++e) {
    const double m = model.wear_multiplier(e);
    EXPECT_GT(m, prev) << "erases=" << e;
    EXPECT_DOUBLE_EQ(m, 1.0 + 0.02 * (e - 16)) << "erases=" << e;
    prev = m;
  }
  // Pure: repeated queries do not drift (no hidden RNG draw).
  EXPECT_DOUBLE_EQ(model.wear_multiplier(40), model.wear_multiplier(40));
}

// Same fleet, wear ramp on vs off: the ramp must escalate fault pressure
// as erase counts climb past the rated endurance. Both runs are fully
// deterministic, so the comparison is stable.
TEST(WearRampTest, RampEscalatesFaultPressure) {
  // Reset-heavy mix so erase counts actually climb past the tiny rated
  // endurance within the soak.
  FleetSoakPlan ramped = SmallPlan(/*shards=*/1, /*cuts=*/12);
  ramped.workload.reset_prob = 0.3;
  ramped.wear_ramp_endurance = 1;
  ramped.wear_ramp_slope = 2.0;

  FleetSoakPlan flat = SmallPlan(/*shards=*/1, /*cuts=*/12);
  flat.workload.reset_prob = 0.3;
  flat.wear_ramp_endurance = 0;  // leave the template (no wear coupling)

  auto rr = FleetSoakRunner(ramped).Run();
  auto fr = FleetSoakRunner(flat).Run();
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  ASSERT_TRUE(fr.ok()) << fr.status().ToString();
  EXPECT_GT(rr.value().reliability.TotalFaults(),
            fr.value().reliability.TotalFaults());
}

// A shard whose device latches read-only (healthy-spare floor) ends its
// soak early as a survivor: reported in read_only_shards, never fatal.
TEST(FleetSoakTest, ReadOnlyShardIsASurvivorNotAFailure) {
  FleetSoakPlan plan = SmallPlan(/*shards=*/2, /*cuts=*/4);
  // A floor no small device can satisfy: the first write trips the latch.
  plan.config.fault.read_only_spare_floor_blocks = 1'000'000;
  auto res = FleetSoakRunner(plan).Run();
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().read_only_shards, 2u);
  for (const FleetShardResult& s : res.value().shards) {
    EXPECT_TRUE(s.read_only);
    EXPECT_LT(s.cuts, plan.cuts_per_shard);  // ended early
  }
}

TEST(FleetSoakTest, ZeroShardsIsAnError) {
  FleetSoakPlan plan = SmallPlan(1, 1);
  plan.shards = 0;
  EXPECT_FALSE(FleetSoakRunner(plan).Run().ok());
}

TEST(FleetSoakTest, ZeroCutIntervalIsAnError) {
  FleetSoakPlan plan = SmallPlan(1, 1);
  plan.cut_interval_ns = 0;
  EXPECT_FALSE(FleetSoakRunner(plan).Run().ok());
}

// Opt-in long soak: the ISSUE-9 acceptance run. >= 8 shards x >= 100
// wear-ramped cuts each with checkpoints on, every remount verified,
// merged stats bit-identical across thread counts.
TEST(FleetSoakTest, LongFleetSoak) {
  if (std::getenv("CONZONE_FLEET_SOAK") == nullptr) {
    GTEST_SKIP() << "set CONZONE_FLEET_SOAK=1 to run the long fleet soak";
  }
  FleetSoakPlan plan = SmallPlan(/*shards=*/8, /*cuts=*/100);
  std::string reference;
  for (const std::uint32_t threads : {1u, 8u}) {
    plan.threads = threads;
    auto res = FleetSoakRunner(plan).Run();
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    const FleetSoakResult& r = res.value();
    for (const FleetShardResult& s : r.shards) {
      EXPECT_EQ(s.checker_passes, s.remounts) << "shard " << s.shard_id;
      EXPECT_EQ(s.remounts, s.cuts) << "shard " << s.shard_id;
      if (!s.read_only) EXPECT_EQ(s.cuts, plan.cuts_per_shard);
    }
    EXPECT_GE(r.total_cuts, 100u);
    EXPECT_GT(r.recovery.checkpoints_written, 0u);
    const std::string fp = Fingerprint(r);
    if (reference.empty()) {
      reference = fp;
    } else {
      EXPECT_EQ(fp, reference) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace conzone
