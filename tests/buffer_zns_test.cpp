// Unit tests for the write-buffer pool and the zone state machine.
#include <gtest/gtest.h>

#include "buffer/write_buffer.hpp"
#include "zns/zone.hpp"

namespace conzone {
namespace {

WriteBufferConfig SmallBufCfg() {
  WriteBufferConfig c;
  c.num_buffers = 2;
  c.buffer_bytes = 16 * kKiB;  // 4 slots
  c.slot_bytes = 4 * kKiB;
  return c;
}

std::vector<SlotWrite> Slots(std::uint64_t first_lpn, std::size_t n) {
  std::vector<SlotWrite> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back({Lpn{first_lpn + i}, first_lpn + i});
  return out;
}

// --- write buffers ---

TEST(WriteBufferPoolTest, ModuloMapping) {
  WriteBufferPool pool(SmallBufCfg());
  EXPECT_EQ(pool.BufferForZone(ZoneId{0}).value(), 0u);
  EXPECT_EQ(pool.BufferForZone(ZoneId{1}).value(), 1u);
  EXPECT_EQ(pool.BufferForZone(ZoneId{2}).value(), 0u);
  EXPECT_EQ(pool.BufferForZone(ZoneId{7}).value(), 1u);
}

TEST(WriteBufferPoolTest, ConflictDetection) {
  WriteBufferPool pool(SmallBufCfg());
  ASSERT_TRUE(pool.Append(ZoneId{0}, Lpn{0}, Slots(0, 2)).ok());
  EXPECT_FALSE(pool.HasConflict(ZoneId{0}));  // same zone continues
  EXPECT_TRUE(pool.HasConflict(ZoneId{2}));   // same buffer, other zone
  EXPECT_FALSE(pool.HasConflict(ZoneId{1}));  // other buffer
}

TEST(WriteBufferPoolTest, AppendEnforcesContiguity) {
  WriteBufferPool pool(SmallBufCfg());
  ASSERT_TRUE(pool.Append(ZoneId{0}, Lpn{0}, Slots(0, 2)).ok());
  EXPECT_EQ(pool.Append(ZoneId{0}, Lpn{5}, Slots(5, 1)).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(pool.Append(ZoneId{0}, Lpn{2}, Slots(2, 2)).ok());
  EXPECT_EQ(pool.FreeSlots(WriteBufferId{0}), 0u);
  EXPECT_EQ(pool.Append(ZoneId{0}, Lpn{4}, Slots(4, 1)).code(),
            StatusCode::kResourceExhausted);
}

TEST(WriteBufferPoolTest, AppendRejectsForeignOwner) {
  WriteBufferPool pool(SmallBufCfg());
  ASSERT_TRUE(pool.Append(ZoneId{0}, Lpn{0}, Slots(0, 1)).ok());
  EXPECT_EQ(pool.Append(ZoneId{2}, Lpn{100}, Slots(100, 1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(WriteBufferPoolTest, TakeReturnsContentAndClears) {
  WriteBufferPool pool(SmallBufCfg());
  ASSERT_TRUE(pool.Append(ZoneId{0}, Lpn{10}, Slots(10, 3)).ok());
  const BufferedExtent e = pool.Take(WriteBufferId{0}, /*conflict=*/true);
  EXPECT_EQ(e.owner, ZoneId{0});
  EXPECT_EQ(e.first_lpn, Lpn{10});
  EXPECT_EQ(e.slot_count(), 3u);
  EXPECT_TRUE(pool.Contents(WriteBufferId{0}).empty());
  EXPECT_EQ(pool.stats().conflicts, 1u);
  EXPECT_EQ(pool.stats().takes, 1u);
}

TEST(WriteBufferPoolTest, DiscardDropsOnlyThatZone) {
  WriteBufferPool pool(SmallBufCfg());
  ASSERT_TRUE(pool.Append(ZoneId{0}, Lpn{0}, Slots(0, 1)).ok());
  ASSERT_TRUE(pool.Append(ZoneId{1}, Lpn{4096}, Slots(4096, 1)).ok());
  pool.Discard(ZoneId{0});
  EXPECT_TRUE(pool.Contents(WriteBufferId{0}).empty());
  EXPECT_FALSE(pool.Contents(WriteBufferId{1}).empty());
}

TEST(WriteBufferPoolTest, StreamPickerPrefersContinuation) {
  WriteBufferPool pool(SmallBufCfg());
  ASSERT_TRUE(pool.AppendTo(WriteBufferId{0}, ZoneId{0}, Lpn{0}, Slots(0, 2)).ok());
  ASSERT_TRUE(pool.AppendTo(WriteBufferId{1}, ZoneId{0}, Lpn{50}, Slots(50, 2)).ok());
  EXPECT_EQ(pool.PickBufferForStream(Lpn{2}).value(), 0u);   // continues buffer 0
  EXPECT_EQ(pool.PickBufferForStream(Lpn{52}).value(), 1u);  // continues buffer 1
  // A stranger stream gets the least recently appended buffer (0).
  EXPECT_EQ(pool.PickBufferForStream(Lpn{999}).value(), 0u);
}

TEST(WriteBufferPoolTest, StreamPickerPrefersEmptyOverEviction) {
  WriteBufferPool pool(SmallBufCfg());
  ASSERT_TRUE(pool.AppendTo(WriteBufferId{0}, ZoneId{0}, Lpn{0}, Slots(0, 2)).ok());
  EXPECT_EQ(pool.PickBufferForStream(Lpn{999}).value(), 1u);  // buffer 1 empty
}

TEST(WriteBufferPoolTest, ConfigValidation) {
  WriteBufferConfig c = SmallBufCfg();
  c.num_buffers = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SmallBufCfg();
  c.buffer_bytes = 10 * 1000;  // not a slot multiple
  EXPECT_FALSE(c.Validate().ok());
}

// --- zones ---

ZoneLimitsConfig SmallZoneCfg() {
  ZoneLimitsConfig c;
  c.zone_size_bytes = 64 * kKiB;
  c.zone_capacity_bytes = 64 * kKiB;
  c.num_zones = 8;
  c.max_open_zones = 2;
  c.max_active_zones = 4;
  return c;
}

TEST(ZoneManagerTest, WriteMustFollowWritePointer) {
  ZoneManager z(SmallZoneCfg());
  EXPECT_TRUE(z.BeginWrite(ZoneId{0}, 0, 4096).ok());
  EXPECT_EQ(z.Info(ZoneId{0}).write_pointer, 4096u);
  EXPECT_EQ(z.Info(ZoneId{0}).state, ZoneState::kImplicitOpen);
  EXPECT_EQ(z.BeginWrite(ZoneId{0}, 0, 4096).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(z.BeginWrite(ZoneId{0}, 4096, 4096).ok());
}

TEST(ZoneManagerTest, FullZoneRejectsWritesUntilReset) {
  ZoneManager z(SmallZoneCfg());
  ASSERT_TRUE(z.BeginWrite(ZoneId{0}, 0, 64 * kKiB).ok());
  EXPECT_EQ(z.Info(ZoneId{0}).state, ZoneState::kFull);
  EXPECT_EQ(z.open_count(), 0u);  // FULL releases the open slot
  EXPECT_EQ(z.BeginWrite(ZoneId{0}, 64 * kKiB, 4096).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(z.Reset(ZoneId{0}).ok());
  EXPECT_EQ(z.Info(ZoneId{0}).state, ZoneState::kEmpty);
  EXPECT_EQ(z.Info(ZoneId{0}).resets, 1u);
  EXPECT_TRUE(z.BeginWrite(ZoneId{0}, 0, 4096).ok());
}

TEST(ZoneManagerTest, WriteBeyondCapacityRejected) {
  ZoneManager z(SmallZoneCfg());
  EXPECT_EQ(z.BeginWrite(ZoneId{0}, 0, 65 * kKiB).code(), StatusCode::kOutOfRange);
}

TEST(ZoneManagerTest, OpenLimitClosesImplicitZones) {
  ZoneManager z(SmallZoneCfg());
  ASSERT_TRUE(z.BeginWrite(ZoneId{0}, 0, 4096).ok());
  ASSERT_TRUE(z.BeginWrite(ZoneId{1}, 0, 4096).ok());
  EXPECT_EQ(z.open_count(), 2u);
  // Third implicit open: zone 0 is silently closed to make room.
  ASSERT_TRUE(z.BeginWrite(ZoneId{2}, 0, 4096).ok());
  EXPECT_EQ(z.open_count(), 2u);
  EXPECT_EQ(z.Info(ZoneId{0}).state, ZoneState::kClosed);
  EXPECT_EQ(z.active_count(), 3u);
  // A write to the closed zone re-opens it at its write pointer.
  ASSERT_TRUE(z.BeginWrite(ZoneId{0}, 4096, 4096).ok());
  EXPECT_EQ(z.Info(ZoneId{0}).state, ZoneState::kImplicitOpen);
}

TEST(ZoneManagerTest, ActiveLimitEnforced) {
  ZoneManager z(SmallZoneCfg());
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(z.BeginWrite(ZoneId{i}, 0, 4096).ok()) << i;
  }
  EXPECT_EQ(z.active_count(), 4u);
  EXPECT_EQ(z.BeginWrite(ZoneId{4}, 0, 4096).code(), StatusCode::kResourceExhausted);
}

TEST(ZoneManagerTest, ExplicitOpenPinsTheSlot) {
  ZoneManager z(SmallZoneCfg());
  ASSERT_TRUE(z.ExplicitOpen(ZoneId{0}).ok());
  ASSERT_TRUE(z.ExplicitOpen(ZoneId{1}).ok());
  // Explicitly open zones cannot be displaced by an implicit open.
  EXPECT_EQ(z.BeginWrite(ZoneId{2}, 0, 4096).code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(z.Close(ZoneId{0}).ok());
  EXPECT_TRUE(z.BeginWrite(ZoneId{2}, 0, 4096).ok());
}

TEST(ZoneManagerTest, CloseEmptyZoneReturnsToEmpty) {
  ZoneManager z(SmallZoneCfg());
  ASSERT_TRUE(z.ExplicitOpen(ZoneId{0}).ok());
  ASSERT_TRUE(z.Close(ZoneId{0}).ok());
  EXPECT_EQ(z.Info(ZoneId{0}).state, ZoneState::kEmpty);
  EXPECT_EQ(z.active_count(), 0u);
}

TEST(ZoneManagerTest, FinishPinsWritePointer) {
  ZoneManager z(SmallZoneCfg());
  ASSERT_TRUE(z.BeginWrite(ZoneId{0}, 0, 4096).ok());
  ASSERT_TRUE(z.Finish(ZoneId{0}).ok());
  EXPECT_EQ(z.Info(ZoneId{0}).state, ZoneState::kFull);
  EXPECT_EQ(z.Info(ZoneId{0}).write_pointer, 64 * kKiB);
  EXPECT_EQ(z.open_count(), 0u);
  EXPECT_EQ(z.active_count(), 0u);
}

TEST(ZoneManagerTest, ReadBoundedByWritePointer) {
  ZoneManager z(SmallZoneCfg());
  ASSERT_TRUE(z.BeginWrite(ZoneId{0}, 0, 8192).ok());
  EXPECT_TRUE(z.CheckRead(ZoneId{0}, 0, 8192).ok());
  EXPECT_EQ(z.CheckRead(ZoneId{0}, 4096, 8192).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(z.CheckRead(ZoneId{9}, 0, 4096).code(), StatusCode::kOutOfRange);
}

TEST(ZoneManagerTest, ConfigValidation) {
  ZoneLimitsConfig c = SmallZoneCfg();
  c.max_active_zones = 1;  // below max_open
  EXPECT_FALSE(c.Validate().ok());
  c = SmallZoneCfg();
  c.zone_capacity_bytes = c.zone_size_bytes + 1;
  EXPECT_FALSE(c.Validate().ok());
  c = SmallZoneCfg();
  c.num_zones = 0;
  EXPECT_FALSE(c.Validate().ok());
}

}  // namespace
}  // namespace conzone
