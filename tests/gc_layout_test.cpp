// Unit tests for the composite GC (SLC half) and the reserved zone
// layout arithmetic.
#include <gtest/gtest.h>

#include <map>

#include "core/zone_layout.hpp"
#include "flash/slc_allocator.hpp"
#include "gc/slc_gc.hpp"

namespace conzone {
namespace {

FlashGeometry GcGeo() {
  FlashGeometry g;
  g.blocks_per_chip = 10;
  g.slc_blocks_per_chip = 4;
  g.pages_per_block = 12;
  return g;
}

class SlcGcTest : public ::testing::Test {
 protected:
  SlcGcTest()
      : array_(GcGeo()),
        engine_(GcGeo(), TimingConfig{}),
        pool_(GcGeo()),
        alloc_(array_, pool_),
        gc_(array_, engine_, pool_, alloc_, GcConfig{2, 3}) {
    gc_.set_remap_hook([this](Lpn lpn, Ppn o, Ppn n) {
      remaps_[lpn.value()] = {o, n};
    });
  }

  /// Stage `n` slots, returning their ppns.
  std::vector<Ppn> Stage(std::uint64_t first_lpn, std::size_t n) {
    std::vector<SlotWrite> w;
    for (std::size_t i = 0; i < n; ++i) {
      w.push_back({Lpn{first_lpn + i}, first_lpn + i});
    }
    auto ppns = alloc_.Program(w);
    EXPECT_TRUE(ppns.ok());
    return ppns.value();
  }

  FlashArray array_;
  FlashTimingEngine engine_;
  SuperblockPool pool_;
  SlcAllocator alloc_;
  SlcGarbageCollector gc_;
  std::map<std::uint64_t, std::pair<Ppn, Ppn>> remaps_;
};

TEST_F(SlcGcTest, NoVictimWhenNothingWritten) {
  EXPECT_FALSE(gc_.SelectVictim().valid());
  EXPECT_FALSE(gc_.NeedsGc());
}

TEST_F(SlcGcTest, GreedyVictimHasFewestValidSlots) {
  const std::uint64_t per_sb =
      static_cast<std::uint64_t>(GcGeo().SlcUsableSlotsPerBlock()) * GcGeo().NumChips();
  auto first = Stage(0, per_sb);        // superblock 0, fully valid
  auto second = Stage(10000, per_sb);   // superblock 1, will be mostly dead
  Stage(20000, 1);                      // binds superblock 2 as current
  for (std::size_t i = 0; i < second.size() - 3; ++i) {
    ASSERT_TRUE(array_.InvalidateSlot(second[i]).ok());
  }
  const SuperblockId victim = gc_.SelectVictim();
  ASSERT_TRUE(victim.valid());
  EXPECT_EQ(victim, GcGeo().SuperblockOfBlock(GcGeo().BlockOfSlot(second[0])));
  (void)first;
}

TEST_F(SlcGcTest, VictimExcludesCurrentOpenSuperblock) {
  Stage(0, 4);  // current superblock has 4 valid slots and is the only used one
  EXPECT_FALSE(gc_.SelectVictim().valid());
}

TEST_F(SlcGcTest, RunMigratesValidDataAndReclaims) {
  const std::uint64_t per_sb =
      static_cast<std::uint64_t>(GcGeo().SlcUsableSlotsPerBlock()) * GcGeo().NumChips();
  // Fill superblocks 0 and 1, invalidate most of each; superblock 2 is
  // current; free list is down to 1 (watermark 2 -> GC needed).
  auto a = Stage(0, per_sb);
  auto b = Stage(10000, per_sb);
  Stage(20000, 1);
  for (std::size_t i = 4; i < a.size(); ++i) ASSERT_TRUE(array_.InvalidateSlot(a[i]).ok());
  for (std::size_t i = 4; i < b.size(); ++i) ASSERT_TRUE(array_.InvalidateSlot(b[i]).ok());
  ASSERT_TRUE(gc_.NeedsGc());

  auto done = gc_.Run(SimTime::Zero());
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_GE(pool_.FreeSlcCount(), 3u);  // reclaim target
  EXPECT_EQ(gc_.stats().slots_migrated, 8u);
  EXPECT_EQ(gc_.stats().superblocks_erased, 2u);
  EXPECT_GT(done.value(), SimTime::Zero());
  // The remap hook saw each surviving slot exactly once, data preserved.
  ASSERT_EQ(remaps_.size(), 8u);
  for (const auto& [lpn, ppns] : remaps_) {
    const SlotRead r = array_.ReadSlot(ppns.second);
    EXPECT_EQ(r.state, SlotState::kValid);
    EXPECT_EQ(r.lpn.value(), lpn);
    EXPECT_EQ(r.token, lpn);
    EXPECT_NE(array_.StateOfSlot(ppns.first), SlotState::kValid);
  }
}

TEST_F(SlcGcTest, FullyValidRegionStillReclaimsWithMigration) {
  const std::uint64_t per_sb =
      static_cast<std::uint64_t>(GcGeo().SlcUsableSlotsPerBlock()) * GcGeo().NumChips();
  auto a = Stage(0, per_sb / 2);  // half a superblock, all valid
  Stage(10000, per_sb);           // fill superblock... a continues sb0
  // Manufacture pressure: take remaining free superblocks.
  while (pool_.FreeSlcCount() > 1) (void)pool_.AllocateSlc();
  ASSERT_TRUE(gc_.NeedsGc());
  auto done = gc_.Run(SimTime::Zero());
  // With everything valid, GC still makes progress by compacting, though
  // it may stop short of the target when no net gain is possible.
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  (void)a;
}

TEST(GcConfigTest, Validation) {
  EXPECT_FALSE((GcConfig{0, 1}).Validate().ok());
  EXPECT_FALSE((GcConfig{3, 2}).Validate().ok());
  EXPECT_TRUE((GcConfig{2, 3}).Validate().ok());
}

// --- zone layout ---

TEST(ZoneLayoutTest, PaperLayoutDerivedQuantities) {
  FlashGeometry g;  // paper defaults
  ZoneLayout layout(g, 16 * kMiB, 1);
  ASSERT_TRUE(layout.Validate().ok());
  EXPECT_EQ(layout.num_zones(), 96u);
  EXPECT_EQ(layout.normal_bytes(), 16128 * kKiB);  // 15.75 MiB
  EXPECT_EQ(layout.patch_bytes(), 256 * kKiB);     // §III-E alignment patch
  EXPECT_EQ(layout.UnitsPerZone(), 168u);
  EXPECT_EQ(layout.device_capacity(), 96ull * 16 * kMiB);
}

TEST(ZoneLayoutTest, ReservedSuperblocksFollowSlcRegion) {
  FlashGeometry g;
  ZoneLayout layout(g, 16 * kMiB, 1);
  EXPECT_EQ(layout.SuperblockOfZone(ZoneId{0}, 0).value(), g.NumSlcSuperblocks());
  EXPECT_EQ(layout.SuperblockOfZone(ZoneId{5}, 0).value(), g.NumSlcSuperblocks() + 5);
}

TEST(ZoneLayoutTest, UnitsStripeAcrossChips) {
  FlashGeometry g;
  ZoneLayout layout(g, 16 * kMiB, 1);
  for (std::uint64_t u = 0; u < 8; ++u) {
    EXPECT_EQ(layout.UnitAt(ZoneId{0}, u).chip.value(), u % 4);
  }
  EXPECT_EQ(layout.UnitAt(ZoneId{0}, 0).first_page_in_block, 0u);
  EXPECT_EQ(layout.UnitAt(ZoneId{0}, 4).first_page_in_block, 6u);  // next row
}

TEST(ZoneLayoutTest, NormalSlotIsBijectiveOverTheZone) {
  FlashGeometry g;
  ZoneLayout layout(g, 16 * kMiB, 1);
  std::set<std::uint64_t> seen;
  // Sample every 16th slot of zone 3's normal region.
  for (std::uint64_t off = 0; off < layout.normal_bytes(); off += 16 * 4096) {
    const Ppn p = layout.NormalSlot(ZoneId{3}, off);
    EXPECT_TRUE(seen.insert(p.value()).second) << off;
    // All slots land in the zone's reserved superblock.
    EXPECT_EQ(g.SuperblockOfBlock(g.BlockOfSlot(p)),
              layout.SuperblockOfZone(ZoneId{3}, 0));
  }
}

TEST(ZoneLayoutTest, StripeAdvanceMatchesAllocatorOrder) {
  FlashGeometry g;
  ZoneLayout layout(g, 16 * kMiB, 1);
  FlashArray array(g);
  SuperblockPool pool(g);
  SlcAllocator alloc(array, pool);
  std::vector<SlotWrite> w(40, SlotWrite{Lpn{1}, 1});
  auto ppns = alloc.Program(w);
  ASSERT_TRUE(ppns.ok());
  for (std::size_t i = 1; i < ppns.value().size(); ++i) {
    auto next = layout.StripeAdvance(ppns.value()[0], i);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, ppns.value()[i]) << i;
  }
}

TEST(ZoneLayoutTest, StripeAdvanceStopsAtSuperblockEnd) {
  FlashGeometry g;
  ZoneLayout layout(g, 16 * kMiB, 1);
  FlashArray array(g);
  SuperblockPool pool(g);
  SlcAllocator alloc(array, pool);
  std::vector<SlotWrite> w(1, SlotWrite{Lpn{1}, 1});
  auto ppns = alloc.Program(w);
  ASSERT_TRUE(ppns.ok());
  const std::uint64_t total =
      static_cast<std::uint64_t>(g.SlcUsableSlotsPerBlock()) * g.NumChips();
  EXPECT_TRUE(layout.StripeAdvance(ppns.value()[0], total - 1).has_value());
  EXPECT_FALSE(layout.StripeAdvance(ppns.value()[0], total).has_value());
}

TEST(ZoneLayoutTest, ValidationRejectsBadShapes) {
  FlashGeometry g;
  EXPECT_FALSE(ZoneLayout(g, 16 * kMiB, 0).Validate().ok());
  EXPECT_FALSE(ZoneLayout(g, 8 * kMiB, 1).Validate().ok());  // below reserved capacity
  EXPECT_FALSE(ZoneLayout(g, 16 * kMiB + 1, 1).Validate().ok());  // unaligned
  EXPECT_TRUE(ZoneLayout(g, 32 * kMiB, 2).Validate().ok());  // 2 superblocks/zone
}

TEST(ZoneLayoutTest, MultiSuperblockZones) {
  FlashGeometry g;
  ZoneLayout layout(g, 32 * kMiB, 2);
  EXPECT_EQ(layout.num_zones(), 48u);
  EXPECT_EQ(layout.normal_bytes(), 2 * 16128 * kKiB);
  // Units walk into the second superblock after exhausting the first.
  const auto early = layout.UnitAt(ZoneId{0}, 0);
  const auto late = layout.UnitAt(ZoneId{0}, layout.UnitsPerZone() - 1);
  EXPECT_NE(g.SuperblockOfBlock(early.block), g.SuperblockOfBlock(late.block));
}

}  // namespace
}  // namespace conzone
