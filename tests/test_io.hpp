// Test-side convenience wrappers over the IoRequest/IoResult device API.
//
// The StorageDevice (offset, len, now, ...) compat overloads are gone;
// tests that only care about completion time or a token round-trip call
// these one-line helpers instead of spelling the request struct at every
// site. They are ordinary IoRequest call sites — nothing here reaches
// around the public API.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/storage_device.hpp"

namespace conzone {

inline Result<SimTime> TestWrite(StorageDevice& d, std::uint64_t off,
                                 std::uint64_t len, SimTime now,
                                 std::span<const std::uint64_t> tokens = {}) {
  auto r = d.Write(IoRequest{off, len, now, tokens});
  if (!r.ok()) return r.status();
  return r.value().done;
}

inline Result<SimTime> TestRead(StorageDevice& d, std::uint64_t off,
                                std::uint64_t len, SimTime now,
                                std::vector<std::uint64_t>* tokens_out = nullptr) {
  auto r = d.Read(IoRequest{off, len, now, {},
                            /*want_tokens=*/tokens_out != nullptr});
  if (!r.ok()) return r.status();
  if (tokens_out != nullptr) *tokens_out = std::move(r.value().tokens);
  return r.value().done;
}

}  // namespace conzone
