// Integration tests: whole-device scenarios across modules — GC under
// sustained pressure, aggregation breaks by GC, full-capacity fills,
// strategy parity, and cross-device comparisons via the workload runner.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "femu/femu_device.hpp"
#include "legacy/legacy_device.hpp"
#include "workload/fio.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

ConZoneConfig TinyCfg() {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 14;  // 4 SLC + 10 normal => 10 zones
  cfg.geometry.slc_blocks_per_chip = 4;
  return cfg;
}

TEST(IntegrationTest, SlcGcTriggersUnderSustainedConflictTraffic) {
  ConZoneConfig cfg = TinyCfg();
  cfg.geometry.slc_blocks_per_chip = 3;  // tighter SLC region
  cfg.geometry.blocks_per_chip = 13;
  auto dev = ConZoneDevice::Create(cfg);
  ASSERT_TRUE(dev.ok());
  ConZoneDevice& d = **dev;
  const std::uint64_t zb = d.info().zone_size_bytes;

  // Alternating 48 KiB writes to same-parity zones: every flush stages to
  // SLC, SLC churns, GC must reclaim — repeatedly, across zone resets.
  SimTime t;
  for (int round = 0; round < 6; ++round) {
    std::uint64_t a = 0, b = 0;
    while (a < zb) {
      const std::uint64_t la = std::min<std::uint64_t>(48 * kKiB, zb - a);
      auto ra = TestWrite(d, 0 * zb + a, la, t);
      ASSERT_TRUE(ra.ok()) << ra.status().ToString();
      t = ra.value();
      a += la;
      const std::uint64_t lb = std::min<std::uint64_t>(48 * kKiB, zb - b);
      if (b < zb) {
        auto rb = TestWrite(d, 2 * zb + b, lb, t);
        ASSERT_TRUE(rb.ok()) << rb.status().ToString();
        t = rb.value();
        b += lb;
      }
    }
    ASSERT_TRUE(d.ResetZone(ZoneId{0}, t).ok());
    ASSERT_TRUE(d.ResetZone(ZoneId{2}, t).ok());
  }
  EXPECT_GT(d.gc().stats().runs, 0u);
  EXPECT_GT(d.media_counters().erases_slc, 0u);
}

TEST(IntegrationTest, GcMigrationBreaksZoneAggregationSafely) {
  // Force the zone patch (SLC-resident) to be moved by GC: the zone
  // aggregate must be demoted, yet all data stays readable.
  ConZoneConfig cfg = TinyCfg();
  cfg.geometry.slc_blocks_per_chip = 3;
  cfg.geometry.blocks_per_chip = 13;
  auto dev = ConZoneDevice::Create(cfg);
  ASSERT_TRUE(dev.ok());
  ConZoneDevice& d = **dev;
  const std::uint64_t zb = d.info().zone_size_bytes;

  // Complete zone 0 (patch run lands in SLC, zone aggregates).
  SimTime t;
  ASSERT_TRUE(FioRunner::Precondition(d, 0, zb, 512 * kKiB, &t).ok());
  ASSERT_EQ(d.stats().aggregates_zone, 1u);

  // Grind the SLC region with conflicting writes + resets of other zones
  // until GC has to relocate something of zone 0's patch.
  int round = 0;
  while (d.stats().aggregation_breaks == 0 && round < 40) {
    std::uint64_t a = 0;
    while (a < zb) {
      const std::uint64_t len = std::min<std::uint64_t>(48 * kKiB, zb - a);
      auto r1 = TestWrite(d, 1 * zb + a, len, t);
      ASSERT_TRUE(r1.ok()) << r1.status().ToString();
      t = r1.value();
      auto r2 = TestWrite(d, 3 * zb + a, len, t);
      ASSERT_TRUE(r2.ok()) << r2.status().ToString();
      t = r2.value();
      a += len;
    }
    ASSERT_TRUE(d.ResetZone(ZoneId{1}, t).ok());
    ASSERT_TRUE(d.ResetZone(ZoneId{3}, t).ok());
    ++round;
  }
  EXPECT_GT(d.stats().aggregation_breaks, 0u) << "GC never moved the patch";
  // Zone 0 must no longer be zone-aggregated, but reads stay perfect.
  EXPECT_NE(d.mapping().Get(Lpn{zb / 4096 - 1}).gran, MapGranularity::kZone);
  std::vector<std::uint64_t> got;
  auto r = TestRead(d, 0, zb, t, &got);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(got.size(), zb / 4096);
}

TEST(IntegrationTest, FillEveryZoneThenResetEverything) {
  auto dev = ConZoneDevice::Create(TinyCfg());
  ASSERT_TRUE(dev.ok());
  ConZoneDevice& d = **dev;
  const DeviceInfo di = d.info();
  SimTime t;
  for (std::uint64_t z = 0; z < di.num_zones; ++z) {
    ASSERT_TRUE(
        FioRunner::Precondition(d, z * di.zone_size_bytes, di.zone_size_bytes,
                                512 * kKiB, &t)
            .ok())
        << "zone " << z;
  }
  EXPECT_EQ(d.stats().aggregates_zone, di.num_zones);
  for (std::uint64_t z = 0; z < di.num_zones; ++z) {
    auto r = d.ResetZone(ZoneId{z}, t);
    ASSERT_TRUE(r.ok());
    t = r.value();
  }
  // The device is reusable end to end after a full wipe.
  ASSERT_TRUE(FioRunner::Precondition(d, 0, di.zone_size_bytes, 512 * kKiB, &t).ok());
  std::vector<std::uint64_t> got;
  ASSERT_TRUE(TestRead(d, 0, di.zone_size_bytes, t, &got).ok());
}

TEST(IntegrationTest, StrategiesAgreeOnDataOnlyTimingDiffers) {
  // BITMAP / MULTIPLE / PINNED must return identical payloads for an
  // identical request stream; only latency may differ.
  std::vector<std::vector<std::uint64_t>> payloads;
  for (L2pSearchStrategy s : {L2pSearchStrategy::kBitmap, L2pSearchStrategy::kMultiple,
                              L2pSearchStrategy::kPinned}) {
    ConZoneConfig cfg = TinyCfg();
    cfg.translator.strategy = s;
    auto dev = ConZoneDevice::Create(cfg);
    ASSERT_TRUE(dev.ok());
    SimTime t;
    ASSERT_TRUE(FioRunner::Precondition(**dev, 0, 32 * kMiB, 512 * kKiB, &t).ok());
    std::vector<std::uint64_t> got;
    Rng rng(77);
    for (int i = 0; i < 400; ++i) {
      const std::uint64_t off = rng.NextBelow(32 * kMiB / 4096) * 4096;
      auto r = TestRead(**dev, off, 4096, t, &got);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      t = r.value();
    }
    payloads.push_back(std::move(got));
  }
  EXPECT_EQ(payloads[0], payloads[1]);
  EXPECT_EQ(payloads[0], payloads[2]);
}

TEST(IntegrationTest, RunnerDrivesAllThreeDevices) {
  // The same sequential workload shape runs on every StorageDevice
  // implementation and produces sane bandwidths.
  auto conzone = ConZoneDevice::Create(TinyCfg());
  ASSERT_TRUE(conzone.ok());
  LegacyConfig lc;
  lc.geometry.blocks_per_chip = 14;
  lc.geometry.slc_blocks_per_chip = 4;
  auto legacy = LegacyDevice::Create(lc);
  ASSERT_TRUE(legacy.ok());
  FemuConfig fc;
  fc.geometry.blocks_per_chip = 14;
  fc.geometry.slc_blocks_per_chip = 4;
  auto femu = FemuModelDevice::Create(fc);
  ASSERT_TRUE(femu.ok());

  for (StorageDevice* dev :
       {static_cast<StorageDevice*>(conzone.value().get()),
        static_cast<StorageDevice*>(legacy.value().get()),
        static_cast<StorageDevice*>(femu.value().get())}) {
    FioRunner fio(*dev);
    JobSpec w;
    w.direction = IoDirection::kWrite;
    w.block_size = 512 * kKiB;
    w.region_size = 8 * kMiB;
    w.io_count = 16;
    auto r = fio.Run({w});
    ASSERT_TRUE(r.ok()) << dev->info().name << ": " << r.status().ToString();
    EXPECT_GT(r.value().MiBps(), 50.0) << dev->info().name;
    EXPECT_LT(r.value().MiBps(), 20000.0) << dev->info().name;
  }
}

TEST(IntegrationTest, OpenZoneLimitsHoldThroughTheDevice) {
  ConZoneConfig cfg = TinyCfg();
  cfg.max_open_zones = 2;
  cfg.max_active_zones = 3;
  auto dev = ConZoneDevice::Create(cfg);
  ASSERT_TRUE(dev.ok());
  ConZoneDevice& d = **dev;
  SimTime t;
  const std::uint64_t zb = d.info().zone_size_bytes;
  ASSERT_TRUE(TestWrite(d, 0 * zb, 4096, t).ok());
  ASSERT_TRUE(TestWrite(d, 1 * zb, 4096, t).ok());
  ASSERT_TRUE(TestWrite(d, 2 * zb, 4096, t).ok());  // implicit-closes one
  EXPECT_EQ(d.zones().active_count(), 3u);
  auto r = TestWrite(d, 3 * zb, 4096, t);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // Resetting an active zone frees the slot.
  ASSERT_TRUE(d.ResetZone(ZoneId{0}, t).ok());
  EXPECT_TRUE(TestWrite(d, 3 * zb, 4096, t).ok());
}

TEST(IntegrationTest, FinishZoneFlushesAndSeals) {
  auto dev = ConZoneDevice::Create(TinyCfg());
  ASSERT_TRUE(dev.ok());
  ConZoneDevice& d = **dev;
  SimTime t;
  t = TestWrite(d, 0, 40 * kKiB, t).value();
  auto f = d.FinishZone(ZoneId{0}, t);
  ASSERT_TRUE(f.ok());
  t = f.value();
  EXPECT_EQ(d.zones().Info(ZoneId{0}).state, ZoneState::kFull);
  // Written prefix readable from media, not buffer RAM.
  std::vector<std::uint64_t> got;
  ASSERT_TRUE(TestRead(d, 0, 40 * kKiB, t, &got).ok());
  EXPECT_EQ(d.stats().buffer_ram_reads, 0u);
  // Writes rejected after finish.
  EXPECT_FALSE(TestWrite(d, 40 * kKiB, 4096, t).ok());
}

TEST(IntegrationTest, QlcConfigurationWorksEndToEnd) {
  // §III-B: QLC uses a 64 KiB one-shot unit; zones then fit power-of-two
  // naturally (256-page blocks => 16 MiB superblocks, no patch).
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.normal_cell = CellType::kQlc;
  cfg.geometry.program_unit = 64 * kKiB;
  cfg.geometry.pages_per_block = 256;
  cfg.geometry.blocks_per_chip = 14;
  cfg.geometry.slc_blocks_per_chip = 4;
  cfg.zone_size_bytes = 16 * kMiB;
  auto dev = ConZoneDevice::Create(cfg);
  ASSERT_TRUE(dev.ok()) << dev.status().ToString();
  ConZoneDevice& d = **dev;
  EXPECT_EQ(d.layout().patch_bytes(), 0u);  // no alignment patch needed
  SimTime t;
  ASSERT_TRUE(FioRunner::Precondition(d, 0, 16 * kMiB, 512 * kKiB, &t).ok());
  EXPECT_EQ(d.stats().patch_runs, 0u);
  EXPECT_EQ(d.stats().aggregates_zone, 1u);
  std::vector<std::uint64_t> got;
  ASSERT_TRUE(TestRead(d, 0, 16 * kMiB, t, &got).ok());
}

}  // namespace
}  // namespace conzone
