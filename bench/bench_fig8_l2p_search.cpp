// Fig. 8: impact of the L2P search strategy on random reads with hybrid
// mapping (§IV-D).
//
// On an L2P cache miss the controller must fetch mapping entries from
// flash, but under hybrid mapping it does not know the aggregation level
// of the target address up front:
//
//   BITMAP   — an SRAM map-bits mirror makes it known: 1 fetch
//              (performance-optimized; the SRAM does not scale);
//   MULTIPLE — try LZA, then LCA, then LPA: 1-3 fetches
//              (capacity-optimized);
//   PINNED   — aggregates are pinned in the cache, so a miss implies
//              page granularity: 1 fetch, no SRAM mirror (the paper's
//              proposed feasible design, "realized as a config option").
//
// Workload: zones filled only through their first ~2 MiB, so the data is
// page-mapped (incomplete chunks cannot aggregate); the read span is
// sized to hold the steady-state miss rate at ~27.4%, the operating
// point of the paper's figure. Paper shape: MULTIPLE ~10% lower KIOPS
// than BITMAP and a higher tail; PINNED should match BITMAP.
#include "bench_common.hpp"

namespace conzone::bench {
namespace {

constexpr std::uint64_t kZones = 8;
constexpr std::uint64_t kSpan = 2112 * kKiB;  // 4224 entries vs 3072 cached
constexpr std::uint64_t kIoCount = 20000;

void L2pSearch(::benchmark::State& state, L2pSearchStrategy strategy) {
  for (auto _ : state) {
    ConZoneConfig cfg = ConZoneConfig::PaperConfig();
    cfg.translator.hybrid = true;
    cfg.translator.strategy = strategy;
    auto dev = MakeConZone(cfg);

    SimTime t;
    for (std::uint64_t z = 0; z < kZones; ++z) {
      Status st = FioRunner::Precondition(*dev, z * dev->info().zone_size_bytes, kSpan,
                                          512 * kKiB, &t);
      if (!st.ok()) {
        std::fprintf(stderr, "precondition failed: %s\n", st.ToString().c_str());
        std::abort();
      }
    }

    JobSpec job;
    job.name = "randread";
    job.direction = IoDirection::kRead;
    job.pattern = IoPattern::kRandom;
    job.block_size = 4096;
    for (std::uint64_t z = 0; z < kZones; ++z) job.zone_list.push_back(z);
    job.zone_span_bytes = kSpan;

    // Warm to steady state, then measure.
    job.io_count = kIoCount / 4;
    job.seed = 99;
    const RunResult warm = MustRun(*dev, {job}, t);
    dev->ResetStats();
    job.io_count = kIoCount;
    job.seed = 1;
    const RunResult r = MustRun(*dev, {job}, warm.end_time);

    state.counters["KIOPS"] = r.Kiops();
    state.counters["miss_pct"] = dev->L2pMissRate() * 100.0;
    state.counters["fetches_per_miss"] = dev->translator().stats().FetchesPerMiss();
    state.counters["strategy_sram_KiB"] =
        static_cast<double>(dev->translator().StrategySramBytes()) / 1024.0;
    ExportLatency(state, r);
  }
}

}  // namespace
}  // namespace conzone::bench

using namespace conzone::bench;
using namespace conzone;

BENCHMARK_CAPTURE(L2pSearch, BITMAP, L2pSearchStrategy::kBitmap)->Iterations(1);
BENCHMARK_CAPTURE(L2pSearch, MULTIPLE, L2pSearchStrategy::kMultiple)->Iterations(1);
BENCHMARK_CAPTURE(L2pSearch, PINNED, L2pSearchStrategy::kPinned)->Iterations(1);

BENCHMARK_MAIN();
