// Ablation: TLC vs QLC normal region on the Fig. 6(a) workload.
//
// §III-B's heterogeneous timing model makes the media swap a config
// change: QLC programs a 64 KiB one-shot unit in 6.4 ms and reads in
// 85 us (Table II), so sequential writes drop by roughly the pulse
// ratio while the SLC secondary buffer's role grows. QLC blocks also
// divide evenly into 16 MiB zones, so the §III-E alignment patch
// disappears.
#include "bench_common.hpp"

namespace conzone::bench {
namespace {

ConZoneConfig MediaConfig(CellType cell) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  if (cell == CellType::kQlc) {
    cfg.geometry.normal_cell = CellType::kQlc;
    cfg.geometry.program_unit = 64 * kKiB;  // §III-B QLC one-shot
    cfg.geometry.pages_per_block = 256;     // 4 MiB blocks, 16 MiB zones
    cfg.geometry.blocks_per_chip = 108;
  }
  return cfg;
}

void MediaSeqWrite(::benchmark::State& state, CellType cell) {
  for (auto _ : state) {
    auto dev = MakeConZone(MediaConfig(cell));
    const RunResult r =
        MustRun(*dev, SeqJobs(*dev, IoDirection::kWrite, 1, 64 * kMiB));
    state.counters["MiBps"] = r.MiBps();
    state.counters["patch_runs"] = static_cast<double>(dev->stats().patch_runs);
    ExportLatency(state, r);
  }
}

void MediaSeqRead(::benchmark::State& state, CellType cell) {
  for (auto _ : state) {
    auto dev = MakeConZone(MediaConfig(cell));
    const SimTime t = MustPrecondition(*dev, 0, 64 * kMiB);
    const RunResult r =
        MustRun(*dev, SeqJobs(*dev, IoDirection::kRead, 1, 64 * kMiB), t);
    state.counters["MiBps"] = r.MiBps();
    ExportLatency(state, r);
  }
}

void MediaRandRead(::benchmark::State& state, CellType cell) {
  for (auto _ : state) {
    auto dev = MakeConZone(MediaConfig(cell));
    const SimTime t = MustPrecondition(*dev, 0, 64 * kMiB);
    JobSpec job;
    job.direction = IoDirection::kRead;
    job.pattern = IoPattern::kRandom;
    job.block_size = 4096;
    job.region_size = 64 * kMiB;
    job.io_count = 10000;
    const RunResult r = MustRun(*dev, {job}, t);
    state.counters["KIOPS"] = r.Kiops();
    ExportLatency(state, r);
  }
}

}  // namespace
}  // namespace conzone::bench

using namespace conzone::bench;
using namespace conzone;

BENCHMARK_CAPTURE(MediaSeqWrite, TLC, CellType::kTlc)->Iterations(1);
BENCHMARK_CAPTURE(MediaSeqWrite, QLC, CellType::kQlc)->Iterations(1);
BENCHMARK_CAPTURE(MediaSeqRead, TLC, CellType::kTlc)->Iterations(1);
BENCHMARK_CAPTURE(MediaSeqRead, QLC, CellType::kQlc)->Iterations(1);
BENCHMARK_CAPTURE(MediaRandRead, TLC, CellType::kTlc)->Iterations(1);
BENCHMARK_CAPTURE(MediaRandRead, QLC, CellType::kQlc)->Iterations(1);

BENCHMARK_MAIN();
