// Fig. 6(a): bandwidth of 512 KiB sequential I/O, single-threaded (ST)
// and multi-threaded (MT = 4 jobs), across ConZone, the ZMS reference
// points, Legacy, and the FEMU model (§IV-B, §IV-C).
//
// Paper shape to reproduce:
//   - ConZone write ≈ ZMS (both ST and MT);
//   - ConZone MT read ≈ ZMS, ST read lower (CPU single-core gap);
//   - FEMU write slightly above ZMS (no channel-bandwidth model);
//   - FEMU reads far slower and noisier (KVM exit latency);
//   - ConZone read ≥ Legacy: +1% ST / +10% MT (chunk-aggregated entries
//     stretch the L2P cache; Legacy burns it on a 1023-entry prefetch
//     window). For fairness ConZone runs chunk-level aggregation only.
#include "bench_common.hpp"

namespace conzone::bench {
namespace {

constexpr std::uint64_t kBytesPerJobSt = 128 * kMiB;
constexpr std::uint64_t kBytesPerJobMt = 64 * kMiB;  // x4 jobs = 256 MiB

ConZoneConfig Fig6aConfig() {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  // §IV-C: "For fairness, ConZone only aggregates mapping table entries
  // with a mapping range of a chunk."
  cfg.max_aggregation = MapGranularity::kChunk;
  return cfg;
}

/// MT writes reach the device through the consumer I/O stack: F2FS
/// multiplexes writer threads onto its (few) active data logs, so the
/// device sees at most two sequential streams — matched to its two write
/// buffers via zone allocation parity. Four raw per-thread zone streams
/// over two buffers would conflict on every request; that adversarial
/// placement is exactly what Fig. 6b measures separately.
std::vector<JobSpec> FunneledWriteJobs(const StorageDevice& dev,
                                       std::uint64_t total_bytes) {
  const DeviceInfo di = dev.info();
  std::vector<JobSpec> out;
  for (int j = 0; j < 2; ++j) {
    JobSpec s;
    s.name = "write-log" + std::to_string(j);
    s.direction = IoDirection::kWrite;
    s.pattern = IoPattern::kSequential;
    s.block_size = 512 * kKiB;
    if (di.zone_size_bytes != 0) {
      const std::uint64_t zones = total_bytes / 2 / di.zone_size_bytes;
      for (std::uint64_t z = 0; z < zones; ++z) {
        s.zone_list.push_back(2 * z + static_cast<std::uint64_t>(j));
      }
      s.io_count = CeilDiv(zones * di.zone_size_bytes, s.block_size);
    } else {
      s.region_offset = static_cast<std::uint64_t>(j) * (total_bytes / 2);
      s.region_size = total_bytes / 2;
      s.io_count = CeilDiv(s.region_size, s.block_size);
    }
    s.seed = static_cast<std::uint64_t>(j) + 1;
    out.push_back(std::move(s));
  }
  return out;
}

template <class MakeDev>
void SeqWrite(::benchmark::State& state, MakeDev make, int jobs) {
  for (auto _ : state) {
    auto dev = make();
    const RunResult r =
        jobs == 1
            ? MustRun(*dev, SeqJobs(*dev, IoDirection::kWrite, 1, kBytesPerJobSt))
            : MustRun(*dev, FunneledWriteJobs(*dev, 4 * kBytesPerJobMt));
    state.counters["MiBps"] = r.MiBps();
    ExportLatency(state, r);
  }
}

template <class MakeDev>
void SeqRead(::benchmark::State& state, MakeDev make, int jobs) {
  const std::uint64_t per_job = jobs == 1 ? kBytesPerJobSt : kBytesPerJobMt;
  for (auto _ : state) {
    auto dev = make();
    const auto jobspecs = SeqJobs(*dev, IoDirection::kRead, jobs, per_job);
    SimTime t;
    for (const JobSpec& j : jobspecs) {
      // Precondition each region with the same sequential stream.
      SimTime end = t;
      Status st =
          FioRunner::Precondition(*dev, j.region_offset, j.region_size, 512 * kKiB, &end);
      if (!st.ok()) {
        std::fprintf(stderr, "precondition failed: %s\n", st.ToString().c_str());
        std::abort();
      }
      t = end;
    }
    const RunResult r = MustRun(*dev, jobspecs, t);
    state.counters["MiBps"] = r.MiBps();
    ExportLatency(state, r);
  }
}

auto kConZone = [] { return MakeConZone(Fig6aConfig()); };
auto kLegacy = [] { return MakeLegacy(); };
auto kFemu = [] { return MakeFemu(); };

void ZmsReferenceRow(::benchmark::State& state, double mibps) {
  for (auto _ : state) {
  }
  state.counters["MiBps"] = mibps;
}

}  // namespace
}  // namespace conzone::bench

using namespace conzone::bench;

BENCHMARK_CAPTURE(SeqWrite, ConZone_Write_ST, kConZone, 1)->Iterations(1);
BENCHMARK_CAPTURE(SeqWrite, ConZone_Write_MT4, kConZone, 4)->Iterations(1);
BENCHMARK_CAPTURE(SeqRead, ConZone_Read_ST, kConZone, 1)->Iterations(1);
BENCHMARK_CAPTURE(SeqRead, ConZone_Read_MT4, kConZone, 4)->Iterations(1);

BENCHMARK_CAPTURE(ZmsReferenceRow, ZMS_Write_ST, kZmsSeqWriteSt)->Iterations(1);
BENCHMARK_CAPTURE(ZmsReferenceRow, ZMS_Write_MT4, kZmsSeqWriteMt)->Iterations(1);
BENCHMARK_CAPTURE(ZmsReferenceRow, ZMS_Read_ST, kZmsSeqReadSt)->Iterations(1);
BENCHMARK_CAPTURE(ZmsReferenceRow, ZMS_Read_MT4, kZmsSeqReadMt)->Iterations(1);

BENCHMARK_CAPTURE(SeqWrite, Legacy_Write_ST, kLegacy, 1)->Iterations(1);
BENCHMARK_CAPTURE(SeqWrite, Legacy_Write_MT4, kLegacy, 4)->Iterations(1);
BENCHMARK_CAPTURE(SeqRead, Legacy_Read_ST, kLegacy, 1)->Iterations(1);
BENCHMARK_CAPTURE(SeqRead, Legacy_Read_MT4, kLegacy, 4)->Iterations(1);

BENCHMARK_CAPTURE(SeqWrite, FEMU_Write_ST, kFemu, 1)->Iterations(1);
BENCHMARK_CAPTURE(SeqWrite, FEMU_Write_MT4, kFemu, 4)->Iterations(1);
BENCHMARK_CAPTURE(SeqRead, FEMU_Read_ST, kFemu, 1)->Iterations(1);
BENCHMARK_CAPTURE(SeqRead, FEMU_Read_MT4, kFemu, 4)->Iterations(1);

BENCHMARK_MAIN();
