// Fig. 6(b): the cost of write-buffer conflicts (§IV-C).
//
// The paper's test: odd and even zones map to the two write buffers
// (the modulo rule); two threads each write one zone with 48 KiB
// requests — small enough that every buffer eviction is a premature
// flush. When the two zones have the same parity they fight over one
// buffer (conflict); opposite parity gives each thread its own buffer.
//
// Paper shape: conflict-free bandwidth ~65% higher than conflicting;
// write amplification ~24% lower (the conflict path detours half the
// data through SLC partial programming and folds it back later).
#include "bench_common.hpp"

namespace conzone::bench {
namespace {

RunResult RunPair(ConZoneDevice& dev, std::uint64_t zone_a, std::uint64_t zone_b) {
  std::vector<JobSpec> jobs;
  for (int j = 0; j < 2; ++j) {
    JobSpec s;
    s.name = "writer" + std::to_string(j);
    s.direction = IoDirection::kWrite;
    s.pattern = IoPattern::kSequential;
    s.block_size = 48 * kKiB;
    s.zone_list = {j == 0 ? zone_a : zone_b};
    s.io_count = CeilDiv(dev.info().zone_size_bytes, s.block_size);
    s.seed = static_cast<std::uint64_t>(j) + 1;
    jobs.push_back(std::move(s));
  }
  return MustRun(dev, jobs);
}

void BufferConflict(::benchmark::State& state, bool conflict) {
  for (auto _ : state) {
    auto dev = MakeConZone();
    // Same parity (zones 0 and 2) shares write buffer 0; opposite parity
    // (zones 0 and 1) uses both buffers.
    const RunResult r = RunPair(*dev, 0, conflict ? 2 : 1);
    state.counters["MiBps"] = r.MiBps();
    state.counters["WAF"] = dev->Stats().WriteAmplification();
    state.counters["premature_flushes"] =
        static_cast<double>(dev->stats().premature_flushes);
    state.counters["conflict_flushes"] =
        static_cast<double>(dev->stats().conflict_flushes);
    state.counters["fold_slots_read"] =
        static_cast<double>(dev->stats().fold_slots_read);
    ExportLatency(state, r);
  }
}

}  // namespace
}  // namespace conzone::bench

using namespace conzone::bench;

BENCHMARK_CAPTURE(BufferConflict, SameParity_Conflict, true)->Iterations(1);
BENCHMARK_CAPTURE(BufferConflict, OppositeParity_NoConflict, false)->Iterations(1);

BENCHMARK_MAIN();
