// Table I: feature matrix of zoned flash storage emulators.
//
// The paper's comparison is qualitative; this bench regenerates it
// *executably*: each capability row is demonstrated by poking the actual
// device models in this repository, rather than asserted in prose. The
// FEMU/ConfZNS/NVMeVirt columns reflect the upstream tools as reported
// in the paper; the FEMU column is additionally backed by this repo's
// behavioral FEMU model.
#include <cstdio>

#include "bench_common.hpp"

using namespace conzone;
using namespace conzone::bench;

namespace {

// Executable capability probes against ConZone.
bool ProbeLowLatencyMedia() {
  // SLC reads must come back an order of magnitude under KVM-jitter
  // scale: 4 KiB staged read ~ tens of us.
  auto dev = MakeConZone();
  SimTime t;
  t = dev->Write(IoRequest{0, 4096, t}).value().done;
  t = dev->Flush(t).value();  // 4 KiB lands in SLC (premature)
  const SimTime r0 = t;
  const SimTime r1 = dev->Read(IoRequest{0, 4096, r0}).value().done;
  return (r1 - r0).us() < 100.0 &&
         dev->media_counters().slots_programmed_slc == 1;
}

bool ProbeHeterogeneousMedia() {
  // Premature flush -> SLC; full superpage -> TLC. Both media in one run.
  auto dev = MakeConZone();
  SimTime t;
  t = dev->Write(IoRequest{0, 48 * kKiB, t}).value().done;
  t = dev->Write(IoRequest{2 * dev->info().zone_size_bytes, 4096, t}).value().done;  // conflict
  t = dev->Write(IoRequest{dev->info().zone_size_bytes, 384 * kKiB, t}).value().done;
  return dev->media_counters().slots_programmed_slc > 0 &&
         dev->media_counters().slots_programmed_normal > 0;
}

bool ProbeWriteBuffers() {
  auto dev = MakeConZone();
  return dev->config().buffers.num_buffers == 2 &&
         dev->buffers().SlotCapacity() * 4096 == 384 * kKiB;
}

bool ProbeL2pCache() {
  auto dev = MakeConZone();
  return dev->l2p_cache().max_entries() == 3072;  // 12 KiB / 4 B
}

bool ProbeHybridMapping() {
  auto dev = MakeConZone();
  SimTime t;
  for (std::uint64_t off = 0; off < dev->info().zone_size_bytes; off += 512 * kKiB) {
    t = dev->Write(IoRequest{off, 512 * kKiB, t}).value().done;
  }
  return dev->mapping().Get(Lpn{0}).gran == MapGranularity::kZone;
}

void Row(const char* feature, const char* femu, const char* confzns,
         const char* nvmevirt, bool conzone_probe, const char* conzone_label) {
  std::printf("| %-19s | %-9s | %-7s | %-8s | %-7s |\n", feature, femu, confzns,
              nvmevirt, conzone_probe ? conzone_label : "PROBE-FAILED");
}

}  // namespace

int main() {
  std::printf("Table I: existing zoned flash storage emulators and ConZone\n");
  std::printf("(ConZone column verified by executable probes against this build)\n\n");
  std::printf("| %-19s | %-9s | %-7s | %-8s | %-7s |\n", "", "FEMU", "ConfZNS",
              "NVMeVirt", "ConZone");
  std::printf("|---------------------|-----------|---------|----------|---------|\n");
  Row("Low-latency media", "No", "No", "Yes", ProbeLowLatencyMedia(), "Yes");
  Row("Heterogeneous media", "No", "No", "No", ProbeHeterogeneousMedia(), "Yes");
  Row("# of write buffers", "Yes", "No", "No", ProbeWriteBuffers(), "Yes");
  Row("L2P cache", "No", "No", "No", ProbeL2pCache(), "Yes");
  Row("L2P mapping", "No", "Zone", "No", ProbeHybridMapping(), "Hybrid");
  return 0;
}
