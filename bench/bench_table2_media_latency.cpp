// Table II: access latency of the heterogeneous media in ConZone.
//
// Regenerates the paper's latency table by timing single program/read
// operations of each cell type through the actual timing engine on an
// otherwise idle device (transfer excluded, to match the cited
// media-only figures):
//
//              SLC     TLC       QLC
//   Program    75us    937.5us   6400us
//   Read       20us    32us      85us
#include "bench_common.hpp"

namespace conzone::bench {
namespace {

FlashGeometry GeometryFor(CellType cell) {
  FlashGeometry geo;  // paper defaults
  geo.normal_cell = cell == CellType::kSlc ? CellType::kTlc : cell;
  if (cell == CellType::kQlc) geo.program_unit = 64 * kKiB;  // §III-B
  return geo;
}

void MediaProgram(::benchmark::State& state, CellType cell) {
  for (auto _ : state) {
    const FlashGeometry geo = GeometryFor(cell);
    TimingConfig timing;
    timing.channel_bandwidth_bps = 0;  // isolate the media pulse
    FlashTimingEngine engine(geo, timing);
    const std::uint64_t bytes = cell == CellType::kSlc ? geo.slot_size : geo.program_unit;
    const auto r = engine.Program(ChipId{0}, cell, bytes, SimTime::Zero());
    state.counters["latency_us"] = (r.end - SimTime::Zero()).us();
  }
}

void MediaRead(::benchmark::State& state, CellType cell) {
  for (auto _ : state) {
    const FlashGeometry geo = GeometryFor(cell);
    TimingConfig timing;
    timing.channel_bandwidth_bps = 0;
    FlashTimingEngine engine(geo, timing);
    const SimTime r = engine.ReadPage(ChipId{0}, cell, geo.page_size, SimTime::Zero());
    state.counters["latency_us"] = (r - SimTime::Zero()).us();
  }
}

}  // namespace
}  // namespace conzone::bench

using namespace conzone::bench;
using namespace conzone;

BENCHMARK_CAPTURE(MediaProgram, SLC, CellType::kSlc)->Iterations(1);
BENCHMARK_CAPTURE(MediaProgram, TLC, CellType::kTlc)->Iterations(1);
BENCHMARK_CAPTURE(MediaProgram, QLC, CellType::kQlc)->Iterations(1);
BENCHMARK_CAPTURE(MediaRead, SLC, CellType::kSlc)->Iterations(1);
BENCHMARK_CAPTURE(MediaRead, TLC, CellType::kTlc)->Iterations(1);
BENCHMARK_CAPTURE(MediaRead, QLC, CellType::kQlc)->Iterations(1);

BENCHMARK_MAIN();
