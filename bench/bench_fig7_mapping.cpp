// Fig. 7: impact of the mapping mechanism on 4 KiB random reads (§IV-D).
//
// Same data volume, different read ranges (1 MiB, 16 MiB, 1 GiB). Under
// *page mapping* the 12 KiB L2P cache holds 3072 entries = 12 MiB of
// coverage, so widening the range past that drives the miss rate (and a
// metadata flash read per miss) up. Under *hybrid mapping* a completed
// zone costs a single cache entry, so every range fits and both KIOPS
// and tail latency stay flat (~20 KIOPS / ~50 us in the paper).
//
// Paper shape: both at 20.2 KIOPS @ 1 MiB; page mapping −16.5% @ 16 MiB
// and −33.5% @ 1 GiB; hybrid flat with ~50 us tail.
#include "bench_common.hpp"

namespace conzone::bench {
namespace {

constexpr std::uint64_t kIoCount = 20000;

ConZoneConfig MappingConfig(bool hybrid) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.translator.hybrid = hybrid;
  cfg.translator.strategy = L2pSearchStrategy::kBitmap;
  cfg.max_aggregation = MapGranularity::kZone;
  return cfg;
}

void RandomReadRange(::benchmark::State& state, bool hybrid, std::uint64_t range) {
  for (auto _ : state) {
    auto dev = MakeConZone(MappingConfig(hybrid));
    const SimTime ready = MustPrecondition(*dev, 0, range);

    JobSpec job;
    job.name = "randread";
    job.direction = IoDirection::kRead;
    job.pattern = IoPattern::kRandom;
    job.block_size = 4096;
    job.region_offset = 0;
    job.region_size = range;

    // Warm the L2P cache to steady state, then measure.
    job.io_count = kIoCount / 4;
    job.seed = 99;
    const RunResult warm = MustRun(*dev, {job}, ready);
    dev->ResetStats();
    job.io_count = kIoCount;
    job.seed = 1;
    const RunResult r = MustRun(*dev, {job}, warm.end_time);

    state.counters["KIOPS"] = r.Kiops();
    state.counters["miss_pct"] = dev->L2pMissRate() * 100.0;
    ExportLatency(state, r);
  }
}

}  // namespace
}  // namespace conzone::bench

using namespace conzone::bench;
using namespace conzone;

BENCHMARK_CAPTURE(RandomReadRange, Page_1MiB, false, 1 * kMiB)->Iterations(1);
BENCHMARK_CAPTURE(RandomReadRange, Page_16MiB, false, 16 * kMiB)->Iterations(1);
BENCHMARK_CAPTURE(RandomReadRange, Page_1GiB, false, 1 * kGiB)->Iterations(1);
BENCHMARK_CAPTURE(RandomReadRange, Hybrid_1MiB, true, 1 * kMiB)->Iterations(1);
BENCHMARK_CAPTURE(RandomReadRange, Hybrid_16MiB, true, 16 * kMiB)->Iterations(1);
BENCHMARK_CAPTURE(RandomReadRange, Hybrid_1GiB, true, 1 * kGiB)->Iterations(1);

BENCHMARK_MAIN();
