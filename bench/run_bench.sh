#!/usr/bin/env bash
# Record the emulator self-benchmark from a provenance-checked Release build.
#
# The first committed baseline was accidentally recorded from a Debug
# build, which understated throughput ~10x and made every later Release
# run look like a huge win. This script makes that mistake structurally
# impossible:
#
#   1. configures + builds the harness with CMAKE_BUILD_TYPE=Release;
#   2. re-reads CMAKE_BUILD_TYPE back out of CMakeCache.txt and refuses
#      to write JSON unless it says Release. (google-benchmark's
#      "library_build_type" context field describes the *system
#      libbenchmark* flavor, not this repo's build, so it cannot serve
#      as the provenance check.)
#
# Usage:
#   bench/run_bench.sh [out.json]          # default: BENCH_emulator_throughput.json
#   BUILD_DIR=build-rel bench/run_bench.sh # use/configure a different build tree
#   BENCH_ARGS="--benchmark_min_time=0.2s" bench/run_bench.sh  # extra harness args
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$REPO/build}"
OUT="${1:-$REPO/BENCH_emulator_throughput.json}"

cmake -B "$BUILD" -S "$REPO" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j --target bench_emulator_throughput

build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")"
if [ "$build_type" != "Release" ]; then
  echo "run_bench.sh: refusing to record JSON: CMAKE_BUILD_TYPE='$build_type'" \
       "in $BUILD/CMakeCache.txt (need Release)" >&2
  exit 1
fi

# shellcheck disable=SC2086  # BENCH_ARGS is intentionally word-split
"$BUILD/bench/bench_emulator_throughput" \
  --benchmark_out="$OUT" --benchmark_out_format=json ${BENCH_ARGS:-}
echo "run_bench.sh: wrote $OUT (CMAKE_BUILD_TYPE=$build_type)"
