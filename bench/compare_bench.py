#!/usr/bin/env python3
"""Regression gate over bench_emulator_throughput JSON output.

Compares candidate rates against a baseline JSON by benchmark name and
exits non-zero if any benchmark regressed by more than the threshold
(default 15%). Each row gates on its own rate counter: sim_ios_per_s
for the throughput benches, remounts_per_s for the BM_Remount rows
(which measure mount latency, not IO) — both are higher-is-better, so
one threshold covers them. Benchmarks present in only one file are
reported but never fatal: a new benchmark (e.g. a fresh
BM_Remount/checkpoint_interval axis point) has no baseline to regress
against, and a removed one cannot regress.

More than one candidate file may be given; each benchmark then gates on
its best (max) rate across candidates. Wall-clock noise on a shared
runner is one-sided — contention only ever makes a run look slower —
so the per-row best across a few recordings estimates the machine's
noise floor and stops the gate from failing on scheduling jitter
instead of code. (The same reasoning is why `--benchmark_repetitions`
reports the min; this flag works across whole harness invocations.)

Absolute sim-IOs/s are machine-dependent; the gate only means something
when baseline and candidate come from the same runner class (CI records
both on ubuntu-latest; see .github/workflows/ci.yml). Both files must
come from Release builds — bench/run_bench.sh enforces that at record
time.

Usage:
  bench/compare_bench.py BASELINE.json CANDIDATE.json... [--threshold 0.15]
"""
import argparse
import json
import sys

# In priority order; the first counter a row carries is its gate metric.
# Rows only present in the candidate (e.g. a freshly added cache bench)
# show as non-fatal NEW until the baseline is regenerated.
METRICS = ("sim_ios_per_s", "remounts_per_s", "cache_gets_per_s")
METRIC = " / ".join(METRICS)  # for messages


def load_rates(path):
    """Map of benchmark name -> (metric, rate) for every per-iteration run."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    rates = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue  # means/medians of repeated runs; compare raw runs only
        for metric in METRICS:
            value = bench.get(metric)
            if value is not None:
                rates[bench["name"]] = (metric, float(value))
                break
    return rates


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "candidate",
        nargs="+",
        help="freshly recorded JSON(s) to gate; with several, each "
        "benchmark uses its best rate across them",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="max allowed fractional drop in %s (default 0.15)" % METRIC,
    )
    args = parser.parse_args()

    base = load_rates(args.baseline)
    cand = {}
    for path in args.candidate:
        rates = load_rates(path)
        if not rates:
            sys.exit(f"no {METRIC} entries in candidate {path}")
        for name, (metric, value) in rates.items():
            prev = cand.get(name, (metric, 0.0))
            cand[name] = (metric, max(prev[1], value))
    if not base:
        sys.exit(f"no {METRIC} entries in baseline {args.baseline}")

    overlap = set(base) & set(cand)
    if not overlap:
        # Every comparison would be MISSING/NEW: the gate would "pass"
        # while checking nothing. Treat as a setup error (stale baseline
        # from a renamed suite, or mismatched files).
        sys.exit(
            f"no benchmark appears in both {args.baseline} and the "
            f"candidate(s); nothing to gate"
        )

    # One aligned table, every benchmark on a row, so the CI log reads as
    # a delta report rather than a scroll of ad-hoc lines.
    regressed = []
    rows = []  # (verdict, name, old, new, delta) — old/new/delta as strings
    for name in sorted(base):
        if name not in cand:
            rows.append(("MISSING", name, f"{base[name][1]:,.0f}", "-", "-"))
            continue
        (bm, b), (cm, c) = base[name], cand[name]
        if bm != cm:
            # The bench changed which counter it reports; a ratio across
            # different units means nothing. Non-fatal, like a rename.
            rows.append(("REMETERED", name, f"{b:,.0f}", f"{c:,.0f}", "-"))
            continue
        ratio = c / b if b > 0 else float("inf")
        verdict = "OK"
        if ratio < 1.0 - args.threshold:
            verdict = "REGRESSED"
            regressed.append(name)
        rows.append(
            (verdict, name, f"{b:,.0f}", f"{c:,.0f}", f"{(ratio - 1.0) * 100.0:+.1f}%")
        )
    for name in sorted(set(cand) - set(base)):
        rows.append(("NEW", name, "-", f"{cand[name][1]:,.0f}", "-"))

    header = ("", "benchmark", "old rate", "new rate", "delta")
    widths = [
        max(len(r[i]) for r in rows + [header]) for i in range(len(header))
    ]
    def emit(r):
        print(
            f"{r[0]:<{widths[0]}}  {r[1]:<{widths[1]}}  "
            f"{r[2]:>{widths[2]}}  {r[3]:>{widths[3]}}  {r[4]:>{widths[4]}}"
        )
    emit(header)
    emit(tuple("-" * w for w in widths))
    for r in rows:
        emit(r)
    print(
        f"\n{len(rows)} benchmark(s): "
        f"{sum(1 for r in rows if r[0] == 'OK')} ok, "
        f"{len(regressed)} regressed, "
        f"{sum(1 for r in rows if r[0] == 'NEW')} new, "
        f"{sum(1 for r in rows if r[0] == 'MISSING')} missing"
    )

    if regressed:
        print(
            f"\nFAIL: {len(regressed)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} in {METRIC}: " + ", ".join(regressed)
        )
        return 1
    print(f"\nPASS: no benchmark regressed more than {args.threshold:.0%} in {METRIC}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
