#!/usr/bin/env python3
"""Regression gate over bench_emulator_throughput JSON output.

Compares candidate sim_ios_per_s against a baseline JSON by benchmark
name and exits non-zero if any benchmark regressed by more than the
threshold (default 15%). Benchmarks present in only one file are
reported but never fatal: a new benchmark has no baseline to regress
against, and a removed one cannot regress.

Absolute sim-IOs/s are machine-dependent; the gate only means something
when baseline and candidate come from the same runner class (CI records
both on ubuntu-latest; see .github/workflows/ci.yml). Both files must
come from Release builds — bench/run_bench.sh enforces that at record
time.

Usage:
  bench/compare_bench.py BASELINE.json CANDIDATE.json [--threshold 0.15]
"""
import argparse
import json
import sys

METRIC = "sim_ios_per_s"


def load_rates(path):
    """Map of benchmark name -> sim_ios_per_s for every per-iteration run."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    rates = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue  # means/medians of repeated runs; compare raw runs only
        value = bench.get(METRIC)
        if value is not None:
            rates[bench["name"]] = float(value)
    return rates


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("candidate", help="freshly recorded JSON to gate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="max allowed fractional drop in %s (default 0.15)" % METRIC,
    )
    args = parser.parse_args()

    base = load_rates(args.baseline)
    cand = load_rates(args.candidate)
    if not base:
        sys.exit(f"no {METRIC} entries in baseline {args.baseline}")
    if not cand:
        sys.exit(f"no {METRIC} entries in candidate {args.candidate}")

    overlap = set(base) & set(cand)
    if not overlap:
        # Every comparison would be MISSING/NEW: the gate would "pass"
        # while checking nothing. Treat as a setup error (stale baseline
        # from a renamed suite, or mismatched files).
        sys.exit(
            f"no benchmark appears in both {args.baseline} and "
            f"{args.candidate}; nothing to gate"
        )

    regressed = []
    for name in sorted(base):
        if name not in cand:
            print(f"MISSING    {name}  (baseline only; not fatal)")
            continue
        b, c = base[name], cand[name]
        ratio = c / b if b > 0 else float("inf")
        verdict = "OK"
        if ratio < 1.0 - args.threshold:
            verdict = "REGRESSED"
            regressed.append(name)
        print(
            f"{verdict:10} {name}  baseline={b:,.0f}/s candidate={c:,.0f}/s "
            f"({(ratio - 1.0) * 100.0:+.1f}%)"
        )
    for name in sorted(set(cand) - set(base)):
        print(f"NEW        {name}  candidate={cand[name]:,.0f}/s (no baseline)")

    if regressed:
        print(
            f"\nFAIL: {len(regressed)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} in {METRIC}: " + ", ".join(regressed)
        )
        return 1
    print(f"\nPASS: no benchmark regressed more than {args.threshold:.0%} in {METRIC}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
