// Emulator self-benchmark: wall-clock throughput of the emulator itself.
//
// Unlike the fig*/table* benches — which report *simulated* bandwidth and
// latency — this harness measures how fast the emulator machinery runs on
// the host: simulated IOs per wall-clock second and simulator events per
// wall-clock second, for random-read, sequential-write and mixed 4 KiB
// workloads at iodepth 1/2/4/8. It is the regression gate for hot-path
// work (event queue, L2P cache, address arithmetic, allocation-free IO
// paths): run it before and after, and check sim_ios_per_s.
//
// Reference numbers are checked in at BENCH_emulator_throughput.json
// (regenerate with:
//   bench_emulator_throughput --benchmark_out=BENCH_emulator_throughput.json \
//       --benchmark_out_format=json
// absolute numbers are machine-dependent; compare ratios, not values).
//
// Simulated IOPS (sim_kiops) is exported too: it must be monotonically
// non-decreasing in iodepth (more outstanding requests can only help a
// device with idle parallelism), which the determinism tests assert.
#include "bench_common.hpp"

namespace conzone::bench {
namespace {

constexpr std::uint64_t kRegion = 64 * kMiB;  // 8 zones of the paper config

JobSpec ReadSpec(std::uint64_t ios, std::uint64_t seed, std::uint32_t iodepth) {
  JobSpec s;
  s.name = "randread";
  s.pattern = IoPattern::kRandom;
  s.direction = IoDirection::kRead;
  s.block_size = 4096;
  s.region_offset = 0;
  s.region_size = kRegion;
  s.io_count = ios;
  s.seed = seed;
  s.iodepth = iodepth;
  return s;
}

JobSpec WriteSpec(std::uint64_t ios, std::uint64_t seed, std::uint32_t iodepth) {
  JobSpec s;
  s.name = "seqwrite";
  s.pattern = IoPattern::kSequential;
  s.direction = IoDirection::kWrite;
  s.block_size = 4096;
  s.region_offset = kRegion;
  s.region_size = kRegion;
  s.io_count = ios;
  s.reset_zones_on_wrap = true;
  s.seed = seed;
  s.iodepth = iodepth;
  return s;
}

/// Reset the zones the write workload targets so each repetition starts
/// from empty zones (included in the timed region, like a real rewrite).
void ResetWriteZones(ConZoneDevice& dev, SimTime& t) {
  const std::uint64_t zone = dev.config().zone_size_bytes;
  for (std::uint64_t z = kRegion / zone; z < 2 * kRegion / zone; ++z) {
    auto r = dev.ResetZone(ZoneId{z}, t);
    if (!r.ok()) std::abort();
    t = r.value();
  }
}

void ExportWallClock(::benchmark::State& state, std::uint64_t ios,
                     std::uint64_t events, double sim_kiops) {
  state.counters["sim_ios_per_s"] =
      ::benchmark::Counter(static_cast<double>(ios), ::benchmark::Counter::kIsRate);
  state.counters["events_per_s"] =
      ::benchmark::Counter(static_cast<double>(events), ::benchmark::Counter::kIsRate);
  state.counters["sim_kiops"] = sim_kiops;
}

void BM_RandRead4K(::benchmark::State& state) {
  const auto iodepth = static_cast<std::uint32_t>(state.range(0));
  auto dev = MakeConZone();
  SimTime cur = MustPrecondition(*dev, 0, kRegion);
  constexpr std::uint64_t kIos = 40000;
  std::uint64_t ios = 0, events = 0;
  double sim_kiops = 0;
  for (auto _ : state) {
    RunResult r = MustRun(*dev, {ReadSpec(kIos, 1, iodepth)}, cur);
    cur = r.end_time;
    ios += r.total.ops;
    events += r.events;
    sim_kiops = r.Kiops();
  }
  ExportWallClock(state, ios, events, sim_kiops);
}

void BM_SeqWrite4K(::benchmark::State& state) {
  const auto iodepth = static_cast<std::uint32_t>(state.range(0));
  auto dev = MakeConZone();
  SimTime cur = MustPrecondition(*dev, 0, kRegion);
  constexpr std::uint64_t kIos = 32768;
  std::uint64_t ios = 0, events = 0;
  double sim_kiops = 0;
  for (auto _ : state) {
    ResetWriteZones(*dev, cur);
    RunResult r = MustRun(*dev, {WriteSpec(kIos, 1, iodepth)}, cur);
    cur = r.end_time;
    ios += r.total.ops;
    events += r.events;
    sim_kiops = r.Kiops();
  }
  ExportWallClock(state, ios, events, sim_kiops);
}

void BM_Mixed4K(::benchmark::State& state) {
  const auto iodepth = static_cast<std::uint32_t>(state.range(0));
  auto dev = MakeConZone();
  SimTime cur = MustPrecondition(*dev, 0, kRegion);
  std::uint64_t ios = 0, events = 0;
  double sim_kiops = 0;
  for (auto _ : state) {
    ResetWriteZones(*dev, cur);
    RunResult r = MustRun(
        *dev, {ReadSpec(20000, 1, iodepth), WriteSpec(16384, 2, iodepth)}, cur);
    cur = r.end_time;
    ios += r.total.ops;
    events += r.events;
    sim_kiops = r.Kiops();
  }
  ExportWallClock(state, ios, events, sim_kiops);
}

// Scale-out: N independent device shards on a thread pool, one worker
// thread per shard, each running the same preconditioned 4 KiB random-
// read job with decorrelated seeds. sim_ios_per_s is the AGGREGATE
// simulated-IO rate across shards per wall-clock second (real time, not
// CPU time): on a multi-core host it should scale near-linearly in the
// shard count until cores run out. Device setup + preconditioning happen
// inside each shard's worker, so they are part of the timed region —
// identical per shard, which keeps the scaling ratio honest.
void BM_ShardedRandRead4K(::benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  ShardPlan plan;
  plan.config = ConZoneConfig::PaperConfig();
  plan.jobs = {ReadSpec(20000, 1, 4)};
  plan.shards = shards;
  plan.threads = shards;  // one worker per shard: measure scale-out, not queuing
  plan.master_seed = 1;
  plan.precondition_bytes = kRegion;
  std::uint64_t ios = 0, events = 0;
  double sim_kiops = 0;
  for (auto _ : state) {
    auto res = ShardedRunner(plan).Run();
    if (!res.ok()) {
      std::fprintf(stderr, "sharded run failed: %s\n",
                   res.status().ToString().c_str());
      std::abort();
    }
    const ShardedResult& r = res.value();
    ios += r.total.ops;
    events += r.events;
    sim_kiops = r.total.Kiops();
  }
  ExportWallClock(state, ios, events, sim_kiops);
  state.counters["shards"] = static_cast<double>(shards);
}

// Host-layer striping: one StripedVolume over N conventional (Legacy)
// members, 4 KiB random writes at iodepth 8. Random 4 KiB writes need an
// in-place address space, hence Legacy members — which also exercises
// the conventional-volume routing path. Two readings:
//   * sim_kiops: simulated aggregate IOPS. Outstanding requests land on
//     distinct members whose timelines advance independently, so this
//     should grow with the member count (until iodepth runs out).
//   * sim_ios_per_s: wall-clock emulator throughput. The volume itself
//     is single-threaded (scale-up belongs to the sharded runner), so
//     this stays roughly flat in N — reported honestly, not gated.
void BM_StripedRandWrite4K(::benchmark::State& state) {
  const auto members = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < members; ++i) devs.push_back(MakeLegacy());
  auto volr = StripedVolume::Create(std::move(devs), {});
  if (!volr.ok()) {
    std::fprintf(stderr, "volume create failed: %s\n",
                 volr.status().ToString().c_str());
    std::abort();
  }
  StripedVolume& vol = **volr;

  JobSpec s;
  s.name = "randwrite";
  s.pattern = IoPattern::kRandom;
  s.direction = IoDirection::kWrite;
  s.block_size = 4096;
  s.region_offset = 0;
  s.region_size = kRegion;
  s.io_count = 20000;
  s.seed = 1;
  s.iodepth = 8;

  SimTime cur;
  std::uint64_t ios = 0, events = 0;
  double sim_kiops = 0;
  for (auto _ : state) {
    RunResult r = MustRun(vol, {s}, cur);
    cur = r.end_time;
    ios += r.total.ops;
    events += r.events;
    sim_kiops = r.Kiops();
  }
  ExportWallClock(state, ios, events, sim_kiops);
  state.counters["members"] = static_cast<double>(members);
}

BENCHMARK(BM_RandRead4K)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_SeqWrite4K)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_Mixed4K)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(::benchmark::kMillisecond);
// Real time, not CPU time: the work happens on pool threads, and the
// point is wall-clock scale-out.
BENCHMARK(BM_ShardedRandRead4K)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(::benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();
BENCHMARK(BM_StripedRandWrite4K)
    ->ArgName("members")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace conzone::bench

BENCHMARK_MAIN();
