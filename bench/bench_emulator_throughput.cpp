// Emulator self-benchmark: wall-clock throughput of the emulator itself.
//
// Unlike the fig*/table* benches — which report *simulated* bandwidth and
// latency — this harness measures how fast the emulator machinery runs on
// the host: simulated IOs per wall-clock second and simulator events per
// wall-clock second, for random-read, sequential-write and mixed 4 KiB
// workloads at iodepth 1/2/4/8. It is the regression gate for hot-path
// work (event queue, L2P cache, address arithmetic, allocation-free IO
// paths): run it before and after, and check sim_ios_per_s.
//
// Reference numbers are checked in at BENCH_emulator_throughput.json
// (regenerate with:
//   bench_emulator_throughput --benchmark_out=BENCH_emulator_throughput.json \
//       --benchmark_out_format=json
// absolute numbers are machine-dependent; compare ratios, not values).
//
// Simulated IOPS (sim_kiops) is exported too: it must be monotonically
// non-decreasing in iodepth (more outstanding requests can only help a
// device with idle parallelism), which the determinism tests assert.
#include "bench_common.hpp"

namespace conzone::bench {
namespace {

constexpr std::uint64_t kRegion = 64 * kMiB;  // 8 zones of the paper config

JobSpec ReadSpec(std::uint64_t ios, std::uint64_t seed, std::uint32_t iodepth) {
  JobSpec s;
  s.name = "randread";
  s.pattern = IoPattern::kRandom;
  s.direction = IoDirection::kRead;
  s.block_size = 4096;
  s.region_offset = 0;
  s.region_size = kRegion;
  s.io_count = ios;
  s.seed = seed;
  s.iodepth = iodepth;
  return s;
}

JobSpec WriteSpec(std::uint64_t ios, std::uint64_t seed, std::uint32_t iodepth) {
  JobSpec s;
  s.name = "seqwrite";
  s.pattern = IoPattern::kSequential;
  s.direction = IoDirection::kWrite;
  s.block_size = 4096;
  s.region_offset = kRegion;
  s.region_size = kRegion;
  s.io_count = ios;
  s.reset_zones_on_wrap = true;
  s.seed = seed;
  s.iodepth = iodepth;
  return s;
}

/// Reset the zones the write workload targets so each repetition starts
/// from empty zones (included in the timed region, like a real rewrite).
void ResetWriteZones(ConZoneDevice& dev, SimTime& t) {
  const std::uint64_t zone = dev.config().zone_size_bytes;
  for (std::uint64_t z = kRegion / zone; z < 2 * kRegion / zone; ++z) {
    auto r = dev.ResetZone(ZoneId{z}, t);
    if (!r.ok()) std::abort();
    t = r.value();
  }
}

void ExportWallClock(::benchmark::State& state, std::uint64_t ios,
                     std::uint64_t events, double sim_kiops) {
  state.counters["sim_ios_per_s"] =
      ::benchmark::Counter(static_cast<double>(ios), ::benchmark::Counter::kIsRate);
  state.counters["events_per_s"] =
      ::benchmark::Counter(static_cast<double>(events), ::benchmark::Counter::kIsRate);
  state.counters["sim_kiops"] = sim_kiops;
}

void BM_RandRead4K(::benchmark::State& state) {
  const auto iodepth = static_cast<std::uint32_t>(state.range(0));
  auto dev = MakeConZone();
  SimTime cur = MustPrecondition(*dev, 0, kRegion);
  constexpr std::uint64_t kIos = 40000;
  std::uint64_t ios = 0, events = 0;
  double sim_kiops = 0;
  for (auto _ : state) {
    RunResult r = MustRun(*dev, {ReadSpec(kIos, 1, iodepth)}, cur);
    cur = r.end_time;
    ios += r.total.ops;
    events += r.events;
    sim_kiops = r.Kiops();
  }
  ExportWallClock(state, ios, events, sim_kiops);
}

void BM_SeqWrite4K(::benchmark::State& state) {
  const auto iodepth = static_cast<std::uint32_t>(state.range(0));
  auto dev = MakeConZone();
  SimTime cur = MustPrecondition(*dev, 0, kRegion);
  constexpr std::uint64_t kIos = 32768;
  std::uint64_t ios = 0, events = 0;
  double sim_kiops = 0;
  for (auto _ : state) {
    ResetWriteZones(*dev, cur);
    RunResult r = MustRun(*dev, {WriteSpec(kIos, 1, iodepth)}, cur);
    cur = r.end_time;
    ios += r.total.ops;
    events += r.events;
    sim_kiops = r.Kiops();
  }
  ExportWallClock(state, ios, events, sim_kiops);
}

void BM_Mixed4K(::benchmark::State& state) {
  const auto iodepth = static_cast<std::uint32_t>(state.range(0));
  auto dev = MakeConZone();
  SimTime cur = MustPrecondition(*dev, 0, kRegion);
  std::uint64_t ios = 0, events = 0;
  double sim_kiops = 0;
  for (auto _ : state) {
    ResetWriteZones(*dev, cur);
    RunResult r = MustRun(
        *dev, {ReadSpec(20000, 1, iodepth), WriteSpec(16384, 2, iodepth)}, cur);
    cur = r.end_time;
    ios += r.total.ops;
    events += r.events;
    sim_kiops = r.Kiops();
  }
  ExportWallClock(state, ios, events, sim_kiops);
}

// Scale-out: N independent device shards on a thread pool, one worker
// thread per shard, each running the same preconditioned 4 KiB random-
// read job with decorrelated seeds. sim_ios_per_s is the AGGREGATE
// simulated-IO rate across shards per wall-clock second (real time, not
// CPU time): on a multi-core host it should scale near-linearly in the
// shard count until cores run out. Device setup + preconditioning happen
// inside each shard's worker, so they are part of the timed region —
// identical per shard, which keeps the scaling ratio honest. The
// executor is constructed once outside the loop and passed via
// ShardPlan::executor: worker threads are setup, not steady-state work,
// and reusing one pool across runs is how repeated sharded workloads
// should call the runner.
void BM_ShardedRandRead4K(::benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  WorkStealingExecutor exec(shards);  // one lane per shard: scale-out, not queuing
  ShardPlan plan;
  plan.config = ConZoneConfig::PaperConfig();
  plan.jobs = {ReadSpec(20000, 1, 4)};
  plan.shards = shards;
  plan.executor = &exec;
  plan.master_seed = 1;
  plan.precondition_bytes = kRegion;
  std::uint64_t ios = 0, events = 0;
  double sim_kiops = 0;
  for (auto _ : state) {
    auto res = ShardedRunner(plan).Run();
    if (!res.ok()) {
      std::fprintf(stderr, "sharded run failed: %s\n",
                   res.status().ToString().c_str());
      std::abort();
    }
    const ShardedResult& r = res.value();
    ios += r.total.ops;
    events += r.events;
    sim_kiops = r.total.Kiops();
  }
  ExportWallClock(state, ios, events, sim_kiops);
  state.counters["shards"] = static_cast<double>(shards);
}

// Host-layer striping: one StripedVolume over N conventional (Legacy)
// members, 4 KiB random writes at iodepth 8. Random 4 KiB writes need an
// in-place address space, hence Legacy members — which also exercises
// the conventional-volume routing path. Two readings:
//   * sim_kiops: simulated aggregate IOPS. Outstanding requests land on
//     distinct members whose timelines advance independently, so this
//     should grow with the member count (until iodepth runs out).
//   * sim_ios_per_s: wall-clock emulator throughput. 4 KiB requests
//     touch one stripe unit, so they take the single-run fast path and
//     never fan out (no executor set here); this stays roughly flat in
//     N — reported honestly, not gated. Parallel fan-out is what
//     BM_StripedSeqWrite512K measures.
void BM_StripedRandWrite4K(::benchmark::State& state) {
  const auto members = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < members; ++i) devs.push_back(MakeLegacy());
  auto volr = StripedVolume::Create(std::move(devs), {});
  if (!volr.ok()) {
    std::fprintf(stderr, "volume create failed: %s\n",
                 volr.status().ToString().c_str());
    std::abort();
  }
  StripedVolume& vol = **volr;

  JobSpec s;
  s.name = "randwrite";
  s.pattern = IoPattern::kRandom;
  s.direction = IoDirection::kWrite;
  s.block_size = 4096;
  s.region_offset = 0;
  s.region_size = kRegion;
  s.io_count = 20000;
  s.seed = 1;
  s.iodepth = 8;

  SimTime cur;
  std::uint64_t ios = 0, events = 0;
  double sim_kiops = 0;
  for (auto _ : state) {
    RunResult r = MustRun(vol, {s}, cur);
    cur = r.end_time;
    ios += r.total.ops;
    events += r.events;
    sim_kiops = r.Kiops();
  }
  ExportWallClock(state, ios, events, sim_kiops);
  state.counters["members"] = static_cast<double>(members);
}

// Host-layer striping with a real fork-join: 512 KiB sequential writes
// span 8 stripe units (64 KiB each), so every request fans out across
// min(8, members) member devices — the multi-run path BM_StripedRandWrite4K
// (4 KiB, single-run fast path) never reaches. The volume runs the
// fan-out on a WorkStealingExecutor with `threads` lanes; threads=1 is
// the serial reference path (the executor runs inline). Results are
// bit-identical across thread counts (exec_test cross-checks), so
// sim_kiops must not move with `threads` — only sim_ios_per_s (wall
// clock) may. On a single-hardware-thread host the parallel rows can
// only show overhead, not speedup; EXPERIMENTS.md records that cap.
void BM_StripedSeqWrite512K(::benchmark::State& state) {
  const auto members = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < members; ++i) devs.push_back(MakeLegacy());
  auto volr = StripedVolume::Create(std::move(devs), {});
  if (!volr.ok()) {
    std::fprintf(stderr, "volume create failed: %s\n",
                 volr.status().ToString().c_str());
    std::abort();
  }
  StripedVolume& vol = **volr;
  WorkStealingExecutor exec(threads);
  vol.set_executor(&exec);

  JobSpec s;
  s.name = "seqwrite";
  s.pattern = IoPattern::kSequential;
  s.direction = IoDirection::kWrite;
  s.block_size = 512 * kKiB;
  s.region_offset = 0;
  s.region_size = kRegion;
  s.io_count = 4000;
  s.seed = 1;
  s.iodepth = 4;

  SimTime cur;
  std::uint64_t ios = 0, events = 0;
  double sim_kiops = 0;
  for (auto _ : state) {
    RunResult r = MustRun(vol, {s}, cur);
    cur = r.end_time;
    ios += r.total.ops;
    events += r.events;
    sim_kiops = r.Kiops();
  }
  ExportWallClock(state, ios, events, sim_kiops);
  state.counters["members"] = static_cast<double>(members);
  state.counters["threads"] = static_cast<double>(threads);
}

// Degraded mirror reads: 4 KiB random reads through a 2-way
// RedundantVolume with one member latched failed, so half the reads
// (those whose rotating primary is the dead member) fail over to the
// survivor. Arg 0/1 toggles the failure: the healthy row is the
// baseline, the degraded row prices the reconstruction path — the
// extra status classification, fail-over read, and RedundancyStats
// accounting per IO. Legacy members give random 4 KiB reads an
// in-place address space, as in BM_StripedRandWrite4K.
void BM_DegradedRandRead4K(::benchmark::State& state) {
  const bool degraded = state.range(0) != 0;
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (int i = 0; i < 2; ++i) devs.push_back(MakeLegacy());
  auto volr = RedundantVolume::Create(std::move(devs), {});
  if (!volr.ok()) {
    std::fprintf(stderr, "volume create failed: %s\n",
                 volr.status().ToString().c_str());
    std::abort();
  }
  RedundantVolume& vol = **volr;
  SimTime cur = MustPrecondition(vol, 0, kRegion);
  if (degraded) {
    if (Status st = vol.MarkFailed(0); !st.ok()) std::abort();
  }

  constexpr std::uint64_t kIos = 20000;
  std::uint64_t ios = 0, events = 0;
  double sim_kiops = 0;
  for (auto _ : state) {
    RunResult r = MustRun(vol, {ReadSpec(kIos, 1, /*iodepth=*/8)}, cur);
    cur = r.end_time;
    ios += r.total.ops;
    events += r.events;
    sim_kiops = r.Kiops();
  }
  ExportWallClock(state, ios, events, sim_kiops);
  state.counters["degraded"] = degraded ? 1.0 : 0.0;
  state.counters["reconstructed_units"] =
      static_cast<double>(vol.Redundancy().reconstructed_units);
}

// Remount wall-clock vs device fullness and checkpoint interval: how
// long the emulator takes (in host time) to run the full power-cut
// recovery pipeline — torn-block re-erase, OOB scan, L2P rebuild,
// write-pointer reconciliation — on a device preconditioned to
// 25/50/75/100% of its zones. With checkpoint_interval=0 (L2P log and
// checkpointing off) the OOB scan covers every used block, so wall-clock
// per remount grows roughly linearly with fullness. With an interval K,
// the device folds the mapping into a durable image every K flushed log
// entries during preconditioning and the mount scan shrinks to the
// post-checkpoint tail — remount cost should then track K, not fullness
// (the O(1) claim this series demonstrates). Reported as remounts_per_s
// ZoneCache data path: zipfian 4 KiB-object gets (90%) and puts against
// a cache mounted on the device, journal in two conventional zones. The
// gate metric is cache_gets_per_s — wall-clock Get operations per second
// through index lookup, device read, and (on the put side) admission,
// journaling, and eviction-by-reset. hit_ratio is exported so a change
// that speeds the bench up by caching less is visible for what it is.
void BM_CacheRandGet4K(::benchmark::State& state) {
  const auto theta_pct = static_cast<std::uint64_t>(state.range(0));
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 24;
  cfg.geometry.slc_blocks_per_chip = 4;
  cfg.num_conventional_zones = 2;
  auto dev = MakeConZone(cfg);

  auto cache = ZoneCache::Mount(dev.get(), {}, SimTime::Zero());
  if (!cache.ok()) {
    std::fprintf(stderr, "cache mount failed: %s\n",
                 cache.status().ToString().c_str());
    std::abort();
  }
  CacheJobSpec spec;
  spec.keys = 4096;
  spec.zipf_theta = static_cast<double>(theta_pct) / 100.0;
  spec.ops = 20000;
  std::uint64_t gets = 0;
  double hit_ratio = 0;
  SimTime cur;
  std::vector<std::uint32_t> generations;
  for (auto _ : state) {
    auto r = CacheWorkloadRunner::Run(
        **cache, spec, cur, generations.empty() ? nullptr : &generations);
    if (!r.ok()) {
      std::fprintf(stderr, "cache run failed: %s\n", r.status().ToString().c_str());
      std::abort();
    }
    cur = r.value().end;
    generations = std::move(r.value().generations);
    gets += r.value().gets;
  }
  hit_ratio = (*cache)->stats().HitRatio();
  state.counters["cache_gets_per_s"] = ::benchmark::Counter(
      static_cast<double>(gets), ::benchmark::Counter::kIsRate);
  state.counters["hit_ratio"] = hit_ratio;
  state.counters["zipf_theta_pct"] = static_cast<double>(theta_pct);
}

// (wall-clock rate) plus the *simulated* remount latency sim_remount_ms;
// there is deliberately no sim_ios_per_s counter — that metric is the
// compare_bench.py throughput gate, and remount has its own.
void BM_Remount(::benchmark::State& state) {
  const auto fullness_pct = static_cast<std::uint64_t>(state.range(0));
  const auto ckpt_interval = static_cast<std::uint64_t>(state.range(1));
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  // Shrink the flash so a 100%-full OOB scan stays in benchmark budget;
  // the fullness *ratio* is what the series varies.
  cfg.geometry.blocks_per_chip = 40;
  cfg.geometry.slc_blocks_per_chip = 8;
  cfg.fault.power_loss = true;  // journaling on, cuts legal
  if (ckpt_interval > 0) {
    cfg.l2p_log.enabled = true;  // the interval counts flushed log entries
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.interval_entries = ckpt_interval;
  }
  auto dev = MakeConZone(cfg);

  const DeviceInfo di = dev->info();
  const std::uint64_t zones_to_fill = di.num_zones * fullness_pct / 100;
  SimTime cur = zones_to_fill == 0
                    ? SimTime::Zero()
                    : MustPrecondition(*dev, 0, zones_to_fill * di.zone_size_bytes);

  std::uint64_t remounts = 0;
  double sim_remount_ms = 0;
  for (auto _ : state) {
    if (Status st = dev->PowerCut(cur); !st.ok()) {
      std::fprintf(stderr, "power cut failed: %s\n", st.ToString().c_str());
      std::abort();
    }
    auto rec = dev->Recover(cur);
    if (!rec.ok()) {
      std::fprintf(stderr, "recover failed: %s\n", rec.status().ToString().c_str());
      std::abort();
    }
    sim_remount_ms = (rec.value() - cur).ms();
    cur = rec.value();
    ++remounts;
  }
  state.counters["remounts_per_s"] = ::benchmark::Counter(
      static_cast<double>(remounts), ::benchmark::Counter::kIsRate);
  state.counters["sim_remount_ms"] = sim_remount_ms;
  state.counters["fullness_pct"] = static_cast<double>(fullness_pct);
  state.counters["checkpoint_interval"] = static_cast<double>(ckpt_interval);
  state.counters["pages_skipped"] =
      static_cast<double>(dev->recovery_stats().pages_skipped);
}

BENCHMARK(BM_RandRead4K)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_SeqWrite4K)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_Mixed4K)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(::benchmark::kMillisecond);
// Real time, not CPU time: the work happens on pool threads, and the
// point is wall-clock scale-out.
BENCHMARK(BM_ShardedRandRead4K)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(::benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();
BENCHMARK(BM_StripedRandWrite4K)
    ->ArgName("members")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(::benchmark::kMillisecond);
// Real time: the fan-out happens on executor lanes.
BENCHMARK(BM_StripedSeqWrite512K)
    ->ArgNames({"members", "threads"})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({8, 1})
    ->Args({8, 8})
    ->Unit(::benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();
BENCHMARK(BM_DegradedRandRead4K)
    ->ArgName("degraded")
    ->Arg(0)
    ->Arg(1)
    ->Unit(::benchmark::kMillisecond);
// Uniform (theta=0) and the YCSB-default skew (theta=0.99).
BENCHMARK(BM_CacheRandGet4K)
    ->ArgName("zipf_theta_pct")
    ->Arg(0)
    ->Arg(99)
    ->Unit(::benchmark::kMillisecond);
// Full interval grid at the fullness extremes (the O(1) story), plus the
// checkpoint-off and 4k-interval points at the mid fullness levels.
BENCHMARK(BM_Remount)
    ->ArgNames({"fullness_pct", "checkpoint_interval"})
    ->Args({25, 0})
    ->Args({25, 4096})
    ->Args({25, 16384})
    ->Args({25, 65536})
    ->Args({50, 0})
    ->Args({50, 4096})
    ->Args({75, 0})
    ->Args({75, 4096})
    ->Args({100, 0})
    ->Args({100, 4096})
    ->Args({100, 16384})
    ->Args({100, 65536})
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace conzone::bench

BENCHMARK_MAIN();
