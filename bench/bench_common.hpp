// Shared helpers for the benchmark harness.
//
// Every binary in bench/ regenerates one table or figure of the paper's
// evaluation (§IV). The benches run the same FIO-style micro-workloads
// the authors used, entirely in simulated time; google-benchmark provides
// the runner/reporting, and the simulated metrics (bandwidth, KIOPS,
// tail latency, write amplification) are exported as user counters.
//
// ZMS reference series: the paper compares against numbers published for
// real hardware (ZMS, USENIX ATC'24, SM8350 + UFS). We do not have that
// hardware; the constants below are *illustrative reference points*
// chosen to satisfy the relative claims the paper makes in §IV-B
// (ConZone write ≈ ZMS; ConZone MT read ≈ ZMS, ST read lower; FEMU write
// slightly above ZMS; FEMU reads far slower). EXPERIMENTS.md records how
// each measured shape compares.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "conzone/conzone.hpp"

namespace conzone::bench {

// --- ZMS reference points (MiB/s), §IV-B Fig. 6(a) ---
inline constexpr double kZmsSeqWriteSt = 398.0;
inline constexpr double kZmsSeqWriteMt = 400.0;
inline constexpr double kZmsSeqReadSt = 1100.0;
inline constexpr double kZmsSeqReadMt = 1900.0;

inline std::unique_ptr<ConZoneDevice> MakeConZone(
    const ConZoneConfig& cfg = ConZoneConfig::PaperConfig()) {
  auto dev = ConZoneDevice::Create(cfg);
  if (!dev.ok()) {
    std::fprintf(stderr, "ConZone create failed: %s\n", dev.status().ToString().c_str());
    std::abort();
  }
  return std::move(dev).value();
}

inline std::unique_ptr<LegacyDevice> MakeLegacy(const LegacyConfig& cfg = LegacyConfig{}) {
  auto dev = LegacyDevice::Create(cfg);
  if (!dev.ok()) {
    std::fprintf(stderr, "Legacy create failed: %s\n", dev.status().ToString().c_str());
    std::abort();
  }
  return std::move(dev).value();
}

inline std::unique_ptr<FemuModelDevice> MakeFemu(const FemuConfig& cfg = FemuConfig{}) {
  auto dev = FemuModelDevice::Create(cfg);
  if (!dev.ok()) {
    std::fprintf(stderr, "FEMU create failed: %s\n", dev.status().ToString().c_str());
    std::abort();
  }
  return std::move(dev).value();
}

/// `jobs` sequential-I/O workers with disjoint `zones_per_job`-zone
/// regions, 512 KiB blocks (the §IV-B micro-benchmark).
inline std::vector<JobSpec> SeqJobs(const StorageDevice& dev, IoDirection dir, int jobs,
                                    std::uint64_t bytes_per_job,
                                    std::uint64_t block = 512 * kKiB) {
  const DeviceInfo di = dev.info();
  // Region stride aligned to zones when the device has them. Use an odd
  // zone count so concurrent jobs progress through zones of alternating
  // parity: with the modulo zone-buffer mapping, an even stride would
  // pin every job to the same buffer in lockstep — an adversarial
  // placement the conflict experiment (Fig. 6b) constructs on purpose,
  // not something a filesystem does for plain sequential streams.
  std::uint64_t stride = bytes_per_job;
  if (di.zone_size_bytes) {
    std::uint64_t zones = CeilDiv(stride, di.zone_size_bytes);
    if (jobs > 1 && zones % 2 == 0) ++zones;
    stride = zones * di.zone_size_bytes;
  }
  std::vector<JobSpec> out;
  for (int j = 0; j < jobs; ++j) {
    JobSpec s;
    s.name = (dir == IoDirection::kWrite ? "write" : "read") + std::to_string(j);
    s.direction = dir;
    s.pattern = IoPattern::kSequential;
    s.block_size = block;
    s.region_offset = static_cast<std::uint64_t>(j) * stride;
    s.region_size = bytes_per_job;
    s.io_count = CeilDiv(bytes_per_job, block);
    s.seed = static_cast<std::uint64_t>(j) + 1;
    out.push_back(std::move(s));
  }
  return out;
}

/// Run jobs and abort the bench on error (benches must not silently
/// report nonsense).
inline RunResult MustRun(StorageDevice& dev, const std::vector<JobSpec>& jobs,
                         SimTime start = SimTime::Zero()) {
  FioRunner fio(dev);
  auto res = fio.Run(jobs, start);
  if (!res.ok()) {
    std::fprintf(stderr, "workload failed: %s\n", res.status().ToString().c_str());
    std::abort();
  }
  return std::move(res).value();
}

/// Sequentially precondition [offset, offset+size) and return the sim
/// time when the device is idle again.
inline SimTime MustPrecondition(StorageDevice& dev, std::uint64_t offset,
                                std::uint64_t size) {
  SimTime t;
  Status st = FioRunner::Precondition(dev, offset, size, 512 * kKiB, &t);
  if (!st.ok()) {
    std::fprintf(stderr, "precondition failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return t;
}

/// Standard latency counters for a run.
inline void ExportLatency(::benchmark::State& state, const RunResult& r) {
  state.counters["lat_mean_us"] = r.latency.mean().us();
  state.counters["lat_p99_us"] = r.latency.Percentile(0.99).us();
  state.counters["lat_p999_us"] = r.latency.Percentile(0.999).us();
}

}  // namespace conzone::bench
