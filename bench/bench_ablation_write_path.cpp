// Ablation: write-path resource sizing.
//
// Two sweeps over the design choices DESIGN.md calls out:
//   1. Number of shared write buffers (1..6) under four concurrent
//      48 KiB zone writers — quantifies §I's claim that the limited
//      buffer pool, not the host pattern, creates premature flushes.
//   2. SLC region size under conflict-heavy rewrite traffic — the
//      capacity/tail-latency trade of the secondary write buffer.
#include "bench_common.hpp"

namespace conzone::bench {
namespace {

void WriteBufferCount(::benchmark::State& state, std::uint32_t num_buffers) {
  for (auto _ : state) {
    ConZoneConfig cfg = ConZoneConfig::PaperConfig();
    cfg.buffers.num_buffers = num_buffers;
    auto dev = MakeConZone(cfg);
    std::vector<JobSpec> jobs;
    for (std::uint64_t j = 0; j < 4; ++j) {
      JobSpec s;
      s.name = "w" + std::to_string(j);
      s.direction = IoDirection::kWrite;
      s.block_size = 48 * kKiB;
      s.zone_list = {j};
      s.io_count = CeilDiv(dev->info().zone_size_bytes, s.block_size);
      s.seed = j + 1;
      jobs.push_back(std::move(s));
    }
    const RunResult r = MustRun(*dev, jobs);
    state.counters["MiBps"] = r.MiBps();
    state.counters["WAF"] = dev->Stats().WriteAmplification();
    state.counters["premature_flushes"] =
        static_cast<double>(dev->stats().premature_flushes);
    ExportLatency(state, r);
  }
}

void SlcRegionSize(::benchmark::State& state, std::uint32_t slc_blocks) {
  for (auto _ : state) {
    ConZoneConfig cfg = ConZoneConfig::PaperConfig();
    cfg.geometry.slc_blocks_per_chip = slc_blocks;
    cfg.geometry.blocks_per_chip = 40 + slc_blocks;  // constant normal region
    auto dev = MakeConZone(cfg);
    std::vector<JobSpec> jobs;
    for (int j = 0; j < 2; ++j) {
      JobSpec s;
      s.name = "w" + std::to_string(j);
      s.direction = IoDirection::kWrite;
      s.block_size = 48 * kKiB;
      s.zone_list = {j == 0 ? 0ull : 2ull};  // same-parity conflict pair
      s.io_count = 4 * CeilDiv(dev->info().zone_size_bytes, s.block_size);
      s.reset_zones_on_wrap = true;
      s.seed = static_cast<std::uint64_t>(j) + 1;
      jobs.push_back(std::move(s));
    }
    const RunResult r = MustRun(*dev, jobs);
    state.counters["MiBps"] = r.MiBps();
    state.counters["gc_runs"] = static_cast<double>(dev->gc().stats().runs);
    state.counters["gc_busy_ms"] = dev->gc().stats().busy_time.ms();
    ExportLatency(state, r);
  }
}

/// §III-E extension: cost of persisting mapping updates through the L2P
/// log, whose flush-back blocks host requests.
void L2pLogCost(::benchmark::State& state, bool enabled) {
  for (auto _ : state) {
    ConZoneConfig cfg = ConZoneConfig::PaperConfig();
    cfg.l2p_log.enabled = enabled;
    auto dev = MakeConZone(cfg);
    const RunResult r =
        MustRun(*dev, SeqJobs(*dev, IoDirection::kWrite, 1, 128 * kMiB));
    state.counters["MiBps"] = r.MiBps();
    state.counters["log_flushes"] =
        static_cast<double>(dev->l2p_log().stats().flushes);
    ExportLatency(state, r);
  }
}

}  // namespace
}  // namespace conzone::bench

using namespace conzone::bench;

BENCHMARK_CAPTURE(WriteBufferCount, buffers_1, 1)->Iterations(1);
BENCHMARK_CAPTURE(WriteBufferCount, buffers_2, 2)->Iterations(1);
BENCHMARK_CAPTURE(WriteBufferCount, buffers_3, 3)->Iterations(1);
BENCHMARK_CAPTURE(WriteBufferCount, buffers_4, 4)->Iterations(1);
BENCHMARK_CAPTURE(WriteBufferCount, buffers_6, 6)->Iterations(1);

BENCHMARK_CAPTURE(SlcRegionSize, slc_3, 3)->Iterations(1);
BENCHMARK_CAPTURE(SlcRegionSize, slc_6, 6)->Iterations(1);
BENCHMARK_CAPTURE(SlcRegionSize, slc_12, 12)->Iterations(1);

BENCHMARK_CAPTURE(L2pLogCost, L2pLog_off, false)->Iterations(1);
BENCHMARK_CAPTURE(L2pLogCost, L2pLog_on, true)->Iterations(1);

BENCHMARK_MAIN();
