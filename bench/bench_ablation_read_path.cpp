// Ablation: read-path design knobs beyond Fig. 7/8.
//
//   1. L2P cache size sweep for page vs hybrid mapping at a fixed 64 MiB
//      read range — generalizes Fig. 7's single 12 KiB point and shows
//      hybrid mapping buying back an order of magnitude of SRAM.
//   2. Where the mapping table lives (SLC vs TLC metadata pages): the
//      miss penalty of the §III-C fetch path.
#include "bench_common.hpp"

namespace conzone::bench {
namespace {

constexpr std::uint64_t kRange = 64 * kMiB;
constexpr std::uint64_t kIoCount = 10000;

double RandReadKiops(ConZoneDevice& dev, double* miss_pct) {
  const SimTime ready = MustPrecondition(dev, 0, kRange);
  JobSpec job;
  job.direction = IoDirection::kRead;
  job.pattern = IoPattern::kRandom;
  job.block_size = 4096;
  job.region_size = kRange;
  job.io_count = kIoCount / 4;
  job.seed = 99;
  const RunResult warm = MustRun(dev, {job}, ready);
  dev.ResetStats();
  job.io_count = kIoCount;
  job.seed = 1;
  const RunResult r = MustRun(dev, {job}, warm.end_time);
  if (miss_pct) *miss_pct = dev.L2pMissRate() * 100.0;
  return r.Kiops();
}

void L2pCacheSize(::benchmark::State& state, bool hybrid, std::uint64_t bytes) {
  for (auto _ : state) {
    ConZoneConfig cfg = ConZoneConfig::PaperConfig();
    cfg.translator.hybrid = hybrid;
    cfg.l2p.capacity_bytes = bytes;
    auto dev = MakeConZone(cfg);
    double miss = 0;
    state.counters["KIOPS"] = RandReadKiops(*dev, &miss);
    state.counters["miss_pct"] = miss;
  }
}

void MapMedia(::benchmark::State& state, CellType media) {
  for (auto _ : state) {
    ConZoneConfig cfg = ConZoneConfig::PaperConfig();
    cfg.translator.hybrid = false;  // page mapping: every miss fetches
    cfg.map_media = media;
    auto dev = MakeConZone(cfg);
    double miss = 0;
    state.counters["KIOPS"] = RandReadKiops(*dev, &miss);
    state.counters["miss_pct"] = miss;
  }
}

}  // namespace
}  // namespace conzone::bench

using namespace conzone::bench;
using namespace conzone;

BENCHMARK_CAPTURE(L2pCacheSize, Page_3KiB, false, 3 * kKiB)->Iterations(1);
BENCHMARK_CAPTURE(L2pCacheSize, Page_12KiB, false, 12 * kKiB)->Iterations(1);
BENCHMARK_CAPTURE(L2pCacheSize, Page_48KiB, false, 48 * kKiB)->Iterations(1);
BENCHMARK_CAPTURE(L2pCacheSize, Page_192KiB, false, 192 * kKiB)->Iterations(1);
BENCHMARK_CAPTURE(L2pCacheSize, Hybrid_3KiB, true, 3 * kKiB)->Iterations(1);
BENCHMARK_CAPTURE(L2pCacheSize, Hybrid_12KiB, true, 12 * kKiB)->Iterations(1);
BENCHMARK_CAPTURE(L2pCacheSize, Hybrid_48KiB, true, 48 * kKiB)->Iterations(1);
BENCHMARK_CAPTURE(L2pCacheSize, Hybrid_192KiB, true, 192 * kKiB)->Iterations(1);

BENCHMARK_CAPTURE(MapMedia, MapInSLC, CellType::kSlc)->Iterations(1);
BENCHMARK_CAPTURE(MapMedia, MapInTLC, CellType::kTlc)->Iterations(1);

BENCHMARK_MAIN();
